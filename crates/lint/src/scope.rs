//! Per-file symbol/scope table with local type resolution.
//!
//! Built on the AST-lite ([`crate::parser`]), this resolves a type
//! *spelling* to the canonical name it denotes within the file: import
//! renames (`use std::collections::HashMap as Map`) and `type` aliases
//! are chased (with a cycle guard), so a rule asking "is this
//! hash-ordered?" sees through `Map`, `type Cache = Map<K, V>`, and a
//! struct field declared as `Cache`. Resolution is per-file by design —
//! an alias exported from another crate is invisible — which keeps the
//! analysis dependency-free and O(file); the gap is documented in
//! DESIGN.md §10.

use crate::lexer::{Tok, TokKind};
use crate::parser::{is_keyword, Ast, FnDef, Type};
use std::collections::BTreeSet;

/// Collection names whose iteration order is hash-dependent.
pub const HASH_ORDERED: &[&str] = &[
    "HashMap",
    "HashSet",
    "RandomState",
    "FxHashMap",
    "FxHashSet",
    "IndexMap",
    "IndexSet",
];

/// Interior-mutability wrappers that are not `Sync`.
pub const UNSYNC_CELLS: &[&str] = &["RefCell", "Cell", "UnsafeCell", "OnceCell", "LazyCell"];

/// What a resolved type means to the determinism rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeClass {
    /// Iteration order varies run to run (`HashMap`, `HashSet`, …).
    HashOrdered,
    /// Single-thread interior mutability (`RefCell`, `Cell`, …).
    UnsyncCell,
    /// `f32` / `f64`.
    Float,
    /// Anything else (including unresolved).
    Other,
}

/// Classifies a canonical (already-resolved) type name.
pub fn classify_name(name: &str) -> TypeClass {
    if HASH_ORDERED.contains(&name) {
        TypeClass::HashOrdered
    } else if UNSYNC_CELLS.contains(&name) {
        TypeClass::UnsyncCell
    } else if name == "f32" || name == "f64" {
        TypeClass::Float
    } else {
        TypeClass::Other
    }
}

/// The per-file resolution context.
pub struct Scope<'a> {
    ast: &'a Ast,
}

impl<'a> Scope<'a> {
    /// Builds a scope over a parsed file.
    pub fn new(ast: &'a Ast) -> Scope<'a> {
        Scope { ast }
    }

    /// The underlying AST.
    pub fn ast(&self) -> &Ast {
        self.ast
    }

    /// Resolves a type spelling to its canonical name, chasing import
    /// renames and `type` aliases defined in this file.
    pub fn canonical(&self, ty: &Type) -> String {
        let mut seen = BTreeSet::new();
        self.canonical_inner(ty, &mut seen)
    }

    fn canonical_inner(&self, ty: &Type, seen: &mut BTreeSet<String>) -> String {
        let mut name = ty.name().to_string();
        // A multi-segment path's *first* segment may itself be a renamed
        // import of a module; the final segment is still the name that
        // matters (`collections::HashMap` → `HashMap`).
        loop {
            if !seen.insert(name.clone()) {
                return name; // alias cycle: stop where we are
            }
            if let Some((target, _line)) = self.ast.aliases.get(&name) {
                name = self.canonical_inner(&target.clone(), seen);
                continue;
            }
            if let Some((path, _line)) = self.ast.imports.get(&name) {
                if let Some(last) = path.last() {
                    if *last != name {
                        name = last.clone();
                        continue;
                    }
                }
            }
            return name;
        }
    }

    /// Resolves and classifies a type spelling.
    pub fn classify(&self, ty: &Type) -> TypeClass {
        classify_name(&self.canonical(ty))
    }

    /// Resolves and classifies a bare name used in type position.
    pub fn classify_ident(&self, name: &str) -> TypeClass {
        self.classify(&Type::simple(name))
    }

    /// Names introduced in this file (import renames and `type` aliases)
    /// that resolve to the given class while being *spelled* as something
    /// the token rules would not recognize. Each entry is
    /// `(local name, declaration line, canonical name)`.
    pub fn resolved_names(&self, class: TypeClass) -> Vec<(String, u32, String)> {
        let mut out = Vec::new();
        for (name, (_, line)) in &self.ast.imports {
            self.push_resolved(name, *line, class, &mut out);
        }
        for (name, (_, line)) in &self.ast.aliases {
            self.push_resolved(name, *line, class, &mut out);
        }
        out.sort();
        out.dedup_by(|a, b| a.0 == b.0);
        out
    }

    fn push_resolved(
        &self,
        name: &str,
        line: u32,
        class: TypeClass,
        out: &mut Vec<(String, u32, String)>,
    ) {
        if classify_name(name) == class {
            return; // the spelling itself already matches: token rules see it
        }
        let canon = self.canonical(&Type::simple(name));
        if classify_name(&canon) == class {
            out.push((name.to_string(), line, canon));
        }
    }

    /// The declared type of `field` on struct/enum `owner`, if known.
    pub fn field_type(&self, owner: &str, field: &str) -> Option<&Type> {
        self.ast
            .structs
            .get(owner)?
            .iter()
            .find(|f| f.name == field)
            .map(|f| &f.ty)
    }

    /// The type of a local name inside `f`: the last `let` binding before
    /// anything else, else a parameter. Declared types win; otherwise the
    /// initializer is inspected for a constructor call.
    pub fn local_type(&self, f: &FnDef, name: &str, toks: &[Tok]) -> Option<Type> {
        for l in f.lets.iter().rev() {
            if l.name == name {
                if let Some(ty) = &l.ty {
                    return Some(ty.clone());
                }
                if let Some(range) = l.init {
                    return infer_init_type(toks, range);
                }
                return None;
            }
        }
        f.params
            .iter()
            .find(|(p, _)| p == name)
            .map(|(_, ty)| ty.clone())
    }

    /// Classifies the base of a `.method()` receiver chain ending just
    /// before token index `dot` (the `.` of the method call): walks back
    /// over `ident(.ident)*`, then resolves the base through locals
    /// (`f`'s params and lets) or `self.field` through the impl target's
    /// fields.
    pub fn classify_receiver(&self, f: &FnDef, toks: &[Tok], dot: usize) -> TypeClass {
        // Collect the chain: walk backwards while we see ident / '.'.
        let mut names = Vec::new();
        let mut i = dot; // index of the '.'
        loop {
            if i == 0 {
                break;
            }
            let prev = &toks[i - 1];
            if prev.kind == TokKind::Ident && !is_keyword(&prev.text) || prev.is_ident("self") {
                names.push(prev.text.clone());
                i -= 1;
                if i > 0 && toks[i - 1].is_punct('.') {
                    i -= 1;
                    continue;
                }
            }
            break;
        }
        names.reverse();
        let ty = match names.as_slice() {
            [] => None,
            [one] if one == "self" => None,
            [one] => self.local_type(f, one, toks).or_else(|| {
                // A bare uppercase path base (`HashMap::new`-style
                // receivers) is its own type name.
                one.chars()
                    .next()
                    .filter(char::is_ascii_uppercase)
                    .map(|_| Type::simple(one))
            }),
            // self.field(.field)* — start from the impl target's fields
            // (chasing the impl target through aliases first).
            [base, field, rest @ ..] if base == "self" => (|| {
                let owner = self.canonical(&Type::simple(f.self_ty.as_deref()?));
                let mut ty = self.field_type(&owner, field).cloned()?;
                for fname in rest {
                    let owner = self.canonical(&ty);
                    ty = self.field_type(&owner, fname).cloned()?;
                }
                Some(ty)
            })(),
            // local.field(.field)* — resolve the local, then walk
            // fields through any structs defined in this file.
            [base, rest @ ..] => (|| {
                let mut ty = self.local_type(f, base, toks)?;
                for fname in rest {
                    let owner = self.canonical(&ty);
                    ty = self.field_type(&owner, fname).cloned()?;
                }
                Some(ty)
            })(),
        };
        ty.map_or(TypeClass::Other, |t| self.classify(&t))
    }
}

/// Infers a type from a `let` initializer token range: recognizes
/// constructor calls (`Name::new()`, `Name::with_capacity(..)`,
/// `Name::default()`, `Name::from(..)`) and `.collect::<Type>()`
/// turbofish. Anything else is unknown.
pub fn infer_init_type(toks: &[Tok], range: (usize, usize)) -> Option<Type> {
    let (start, end) = range;
    let end = end.min(toks.len());
    const CTORS: &[&str] = &["new", "default", "with_capacity", "from", "with_hasher"];
    let mut i = start;
    while i < end {
        let t = &toks[i];
        // `.collect :: < Type > (` — turbofish names the collected type.
        if t.is_ident("collect")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_punct('<'))
        {
            let mut p = TypeCursor::new(toks, i + 4, end);
            return Some(p.parse());
        }
        // Path constructor: collect `Seg(::Seg)*::ctor(`.
        if t.kind == TokKind::Ident
            && !is_keyword(&t.text)
            && (i == start || !toks[i - 1].is_punct('.'))
        {
            let mut segs = vec![t.text.clone()];
            let mut j = i + 1;
            while toks.get(j).is_some_and(|t| t.is_punct(':'))
                && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(j + 2).is_some_and(|t| t.kind == TokKind::Ident)
            {
                segs.push(toks[j + 2].text.clone());
                j += 3;
            }
            if segs.len() >= 2
                && toks.get(j).is_some_and(|t| t.is_punct('('))
                && CTORS.contains(&segs.last().map(String::as_str).unwrap_or(""))
            {
                segs.pop(); // drop the ctor name
                return Some(Type {
                    segments: segs,
                    args: Vec::new(),
                });
            }
            i = j.max(i + 1);
            continue;
        }
        i += 1;
    }
    None
}

/// A tiny standalone type parser for turbofish positions (avoids
/// constructing a full [`crate::parser::Parser`]).
struct TypeCursor<'a> {
    toks: &'a [Tok],
    pos: usize,
    end: usize,
}

impl<'a> TypeCursor<'a> {
    fn new(toks: &'a [Tok], pos: usize, end: usize) -> TypeCursor<'a> {
        TypeCursor { toks, pos, end }
    }

    fn parse(&mut self) -> Type {
        let mut segments = Vec::new();
        let mut args = Vec::new();
        while self.pos < self.end {
            let Some(t) = self.toks.get(self.pos) else {
                break;
            };
            match t.kind {
                TokKind::Ident if !is_keyword(&t.text) => {
                    segments.push(t.text.clone());
                    self.pos += 1;
                    if self.toks.get(self.pos).is_some_and(|t| t.is_punct(':'))
                        && self.toks.get(self.pos + 1).is_some_and(|t| t.is_punct(':'))
                    {
                        self.pos += 2;
                        continue;
                    }
                    if self.toks.get(self.pos).is_some_and(|t| t.is_punct('<')) {
                        self.pos += 1;
                        while self.pos < self.end
                            && !self.toks.get(self.pos).is_some_and(|t| t.is_punct('>'))
                        {
                            let before = self.pos;
                            args.push(self.parse());
                            if self.toks.get(self.pos).is_some_and(|t| t.is_punct(',')) {
                                self.pos += 1;
                            }
                            if self.pos == before {
                                self.pos += 1;
                            }
                        }
                        self.pos += 1; // '>'
                    }
                    break;
                }
                _ => {
                    self.pos += 1;
                    break;
                }
            }
        }
        if segments.is_empty() {
            segments.push("(unknown)".to_string());
        }
        Type { segments, args }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn scoped(src: &str) -> (Ast, Vec<Tok>) {
        let toks = lex(src).toks;
        let ast = parse(&toks);
        (ast, toks)
    }

    #[test]
    fn canonical_chases_imports_and_aliases() {
        let (ast, _) = scoped(
            "use std::collections::HashMap as Map;\n\
             type Cache = Map<u64, u64>;\n\
             type Deep = Cache;",
        );
        let s = Scope::new(&ast);
        assert_eq!(s.canonical(&Type::simple("Map")), "HashMap");
        assert_eq!(s.canonical(&Type::simple("Cache")), "HashMap");
        assert_eq!(s.canonical(&Type::simple("Deep")), "HashMap");
        assert_eq!(s.classify_ident("Deep"), TypeClass::HashOrdered);
        assert_eq!(s.classify_ident("BTreeMap"), TypeClass::Other);
    }

    #[test]
    fn alias_cycles_terminate() {
        let (ast, _) = scoped("type A = B;\ntype B = A;");
        let s = Scope::new(&ast);
        let _ = s.canonical(&Type::simple("A")); // must not hang
    }

    #[test]
    fn field_and_local_resolution() {
        let (ast, toks) = scoped(
            "use std::cell::RefCell as Shared;\n\
             struct S { inner: Shared<u64> }\n\
             impl S { fn f(&self, x: f64) { let m = std::collections::HashMap::new(); \
             let y: Shared<u8> = make(); self.inner.borrow(); } }",
        );
        let s = Scope::new(&ast);
        assert_eq!(
            s.field_type("S", "inner").map(|t| s.classify(t)),
            Some(TypeClass::UnsyncCell)
        );
        let f = &ast.fns[0];
        assert_eq!(
            s.local_type(f, "m", &toks).map(|t| s.classify(&t)),
            Some(TypeClass::HashOrdered)
        );
        assert_eq!(
            s.local_type(f, "y", &toks).map(|t| s.classify(&t)),
            Some(TypeClass::UnsyncCell)
        );
        assert_eq!(
            s.local_type(f, "x", &toks).map(|t| s.classify(&t)),
            Some(TypeClass::Float)
        );
    }

    #[test]
    fn receiver_chains_resolve_through_self_fields() {
        let src = "use std::collections::HashMap as Map;\n\
                   struct S { homes: Map<u64, u64> }\n\
                   impl S { fn g(&self) { for k in self.homes.keys() { let _ = k; } } }";
        let (ast, toks) = scoped(src);
        let s = Scope::new(&ast);
        let f = &ast.fns[0];
        // Find the '.' before `keys`.
        let dot = toks
            .iter()
            .position(|t| t.is_ident("keys"))
            .expect("keys token")
            - 1;
        assert_eq!(s.classify_receiver(f, &toks, dot), TypeClass::HashOrdered);
    }

    #[test]
    fn resolved_names_surface_renames_and_aliases() {
        let (ast, _) = scoped(
            "use std::collections::HashMap as Map;\n\
             use std::collections::BTreeMap;\n\
             type Cache = Map<u64, u64>;\n\
             type Sorted = BTreeMap<u64, u64>;",
        );
        let s = Scope::new(&ast);
        let names = s.resolved_names(TypeClass::HashOrdered);
        let just_names: Vec<&str> = names.iter().map(|(n, _, _)| n.as_str()).collect();
        assert_eq!(just_names, vec!["Cache", "Map"]);
        assert!(names.iter().all(|(_, _, c)| c == "HashMap"));
    }

    #[test]
    fn collect_turbofish_is_inferred() {
        let (_, toks) = scoped("fn f() { let m = v.iter().collect::<HashMap<u64, u64>>(); }");
        let ast = parse(&toks);
        let l = &ast.fns[0].lets[0];
        let ty = infer_init_type(&toks, l.init.expect("init")).expect("inferred");
        assert_eq!(ty.name(), "HashMap");
    }
}
