//! `event-time-regression`: event timestamps mutated outside the queue.

use super::{RawFinding, Rule};
use crate::source::SourceFile;

/// Field names that carry "when this event fires" in the simulator's
/// event structures (`EventQueue` entries, scheduled NoC deliveries).
const TIME_FIELDS: &[&str] = &["at"];

/// Flags direct writes to an event-timestamp field (`x.at = …`,
/// `x.at += …`, `x.at -= …`) outside the event-queue module.
///
/// Once an event is scheduled, its firing time is owned by the queue:
/// rewriting it in place can regress time (fire an event before `now`),
/// which breaks the monotonic-cycle invariant the watchdogs and the
/// determinism harness rely on. Rescheduling is expressed by popping and
/// re-pushing, never by editing a timestamp. The queue's own module is
/// exempted via the policy's `[exempt]` table, not here: the rule stays
/// mechanical and the policy names the single owner.
pub struct EventTimeRegression;

impl Rule for EventTimeRegression {
    fn id(&self) -> &'static str {
        "event-time-regression"
    }

    fn description(&self) -> &'static str {
        "event timestamp mutated outside the event-queue API: \
         can regress simulated time and break cycle monotonicity"
    }

    fn fix_hint(&self) -> &'static str {
        "pop and re-push through the event queue (or construct a new event) \
         instead of editing a scheduled timestamp"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<RawFinding>) {
        let toks = &file.toks;
        for (i, t) in toks.iter().enumerate() {
            if !(i > 0 && toks[i - 1].is_punct('.')) {
                continue;
            }
            if !TIME_FIELDS.iter().any(|f| t.is_ident(f)) {
                continue;
            }
            // `.at = v` (but not `==`), `.at += v`, `.at -= v`.
            let mutated = match (toks.get(i + 1), toks.get(i + 2)) {
                (Some(n1), Some(n2)) if n1.is_punct('=') => !n2.is_punct('='),
                (Some(n1), Some(n2)) if n1.is_punct('+') || n1.is_punct('-') => n2.is_punct('='),
                _ => false,
            };
            // Exclude range patterns like `..` (previous-previous token)
            // — `a..b.at` cannot assign, so only the match above matters.
            if mutated {
                out.push(RawFinding {
                    line: t.line,
                    message: format!("scheduled timestamp `.{}` is written in place", t.text),
                });
            }
        }
    }
}
