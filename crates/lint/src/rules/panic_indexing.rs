//! `panic-indexing`: bracket indexing on sim hot paths.

use super::{RawFinding, Rule};
use crate::lexer::TokKind;
use crate::parser::is_keyword;
use crate::source::SourceFile;

/// Flags `expr[index]` slice/array/map indexing in sim crates.
///
/// `v[i]` panics on an out-of-range index, and a panic mid-simulation
/// both loses the run and (under the domain-parallel driver) can tear
/// down sibling workers at a nondeterministic point. The deliberate
/// spellings are `get`/`get_mut` with explicit handling, or an indexing
/// site audited and annotated with a justified
/// `allow(panic-indexing)` stating why the bound holds.
///
/// An index expression is a `[` directly preceded by a value — an
/// identifier (non-keyword) or a closing `)`/`]`. Everything else a `[`
/// can follow (attributes `#[…]`, array types `: [u8; 4]`, slice
/// patterns `let [a, b] = …`, `vec![…]`, array literals) is preceded by
/// punctuation or a keyword and never matches. The full-range borrow
/// `&v[..]` cannot panic and is skipped.
///
/// This rule ships at `warn` in the sim class: the existing tree carries
/// hundreds of audited fixed-geometry indexing sites (set/way arrays,
/// mesh coordinates), and the gate's job is to make *new* ones visible in
/// review, not to force a mass rewrite. The warn→error migration is
/// tracked in ROADMAP.
pub struct PanicIndexing;

impl Rule for PanicIndexing {
    fn id(&self) -> &'static str {
        "panic-indexing"
    }

    fn description(&self) -> &'static str {
        "slice/array indexing (`v[i]`) on a sim path: panics on an out-of-range \
         index and aborts the run at a nondeterministic point under parallel drivers"
    }

    fn fix_hint(&self) -> &'static str {
        "use .get()/.get_mut() and handle None, or justify the bound with \
         an allow(panic-indexing) suppression"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<RawFinding>) {
        let toks = &file.toks;
        for (i, t) in toks.iter().enumerate() {
            if !t.is_punct('[') || i == 0 {
                continue;
            }
            let prev = &toks[i - 1];
            let indexes = match prev.kind {
                TokKind::Ident => !is_keyword(&prev.text),
                TokKind::Punct(')' | ']') => true,
                _ => false,
            };
            if !indexes {
                continue;
            }
            // `[..]` full-range borrow: cannot panic.
            if toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct('.'))
                && toks.get(i + 3).is_some_and(|t| t.is_punct(']'))
            {
                continue;
            }
            let what = if prev.kind == TokKind::Ident {
                format!("`{}[…]`", prev.text)
            } else {
                "`(…)[…]`".to_string()
            };
            out.push(RawFinding {
                line: t.line,
                message: format!("{what} indexes without a bounds check"),
            });
        }
    }
}
