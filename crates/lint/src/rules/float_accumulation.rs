//! `float-accumulation`: order-sensitive float reduction in sim code.

use super::{RawFinding, Rule};
use crate::lexer::{Tok, TokKind};
use crate::parser::FnDef;
use crate::scope::{Scope, TypeClass};
use crate::source::SourceFile;

/// Iterator reduction methods whose result depends on operand order when
/// the element type is a float.
const REDUCERS: &[&str] = &["sum", "product", "fold"];

/// Flags float reductions whose result depends on evaluation order.
///
/// Float addition is not associative: `(a + b) + c != a + (b + c)` in
/// general, so a `.sum::<f64>()` over elements whose order ever changes
/// (a refactor from `Vec` to a re-sorted source, a parallel split) is a
/// silent report-diff. The rule flags:
///
/// * `.sum()` / `.product()` / `.fold(…)` calls whose float-ness is
///   visible — a `::<f32/f64>` turbofish, a float literal or `f32`/`f64`
///   cast in the same statement or in `fold`'s seed argument, or an
///   enclosing `let` whose declared type resolves to a float (aliases
///   chased through the per-file [`Scope`]);
/// * `+=` / `-=` on a float-typed local inside a `for` loop body — the
///   hand-rolled spelling of the same reduction.
///
/// Integer reductions are exact and never flagged. Fixed-order float
/// reduction that is genuinely wanted (a final display-only average)
/// carries a justified `allow(float-accumulation)`.
pub struct FloatAccumulation;

impl Rule for FloatAccumulation {
    fn id(&self) -> &'static str {
        "float-accumulation"
    }

    fn description(&self) -> &'static str {
        "order-sensitive float reduction (sum/product/fold or loop +=) in a \
         deterministic sim crate: float addition is non-associative, so reordering \
         elements changes the report"
    }

    fn fix_hint(&self) -> &'static str {
        "accumulate in integers (ns, counts) and convert once at the edge, or \
         sort the operands and document the fixed reduction order"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<RawFinding>) {
        let toks = &file.toks;
        let scope = Scope::new(&file.ast);
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident || !REDUCERS.contains(&t.text.as_str()) {
                continue;
            }
            if i == 0 || !toks[i - 1].is_punct('.') {
                continue;
            }
            // `.sum::<f64>()` turbofish, or a plain `(` call.
            let open = if toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 3).is_some_and(|t| t.is_punct('<'))
            {
                let close = angle_end(toks, i + 4);
                if window_has_float(toks, i + 4, close) {
                    out.push(found(t, "turbofish names a float type"));
                    continue;
                }
                close + 1
            } else {
                i + 1
            };
            if !toks.get(open).is_some_and(|t| t.is_punct('(')) {
                continue;
            }
            if t.text == "fold" {
                let seed_end = seed_arg_end(toks, open + 1);
                if window_has_float(toks, open + 1, seed_end) {
                    out.push(found(t, "fold seed is a float"));
                    continue;
                }
            }
            if stmt_back_has_float(toks, i) {
                out.push(found(t, "the reduced expression involves floats"));
                continue;
            }
            if let Some(f) = enclosing_fn(&file.ast.fns, i) {
                let float_let = f.lets.iter().any(|l| {
                    l.init.is_some_and(|(s, e)| s <= i && i < e)
                        && l.ty
                            .as_ref()
                            .is_some_and(|ty| scope.classify(ty) == TypeClass::Float)
                });
                if float_let {
                    out.push(found(t, "bound to a float-typed local"));
                }
            }
        }
        // Hand-rolled reductions: `x += …` / `x -= …` on a float local
        // inside a `for` body.
        for f in &file.ast.fns {
            for fl in &f.fors {
                let (start, end) = fl.body;
                let end = end.min(toks.len());
                for i in start..end {
                    let t = &toks[i];
                    if t.kind != TokKind::Ident {
                        continue;
                    }
                    let compound = toks
                        .get(i + 1)
                        .is_some_and(|n| n.is_punct('+') || n.is_punct('-'))
                        && toks.get(i + 2).is_some_and(|n| n.is_punct('='));
                    if !compound {
                        continue;
                    }
                    let is_float = scope
                        .local_type(f, &t.text, toks)
                        .is_some_and(|ty| scope.classify(&ty) == TypeClass::Float);
                    if is_float {
                        out.push(RawFinding {
                            line: t.line,
                            message: format!(
                                "`{}` accumulates floats across loop iterations",
                                t.text
                            ),
                        });
                    }
                }
            }
        }
    }
}

fn found(t: &Tok, why: &str) -> RawFinding {
    RawFinding {
        line: t.line,
        message: format!("`.{}()` reduces floats in iteration order ({why})", t.text),
    }
}

/// True when `[start, end)` contains a float marker: an `f32`/`f64`
/// identifier, a float literal (`Num . Num`), or a float-suffixed number.
fn window_has_float(toks: &[Tok], start: usize, end: usize) -> bool {
    let end = end.min(toks.len());
    for i in start..end {
        let t = &toks[i];
        match t.kind {
            TokKind::Ident if t.text == "f32" || t.text == "f64" => return true,
            TokKind::Num => {
                if t.text.ends_with("f32") || t.text.ends_with("f64") {
                    return true;
                }
                if toks.get(i + 1).is_some_and(|n| n.is_punct('.'))
                    && toks.get(i + 2).is_some_and(|n| n.kind == TokKind::Num)
                {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

/// Scans backwards from the reducer to the start of its statement
/// (`;`/`{`/`}`) looking for a float marker anywhere in the chain.
fn stmt_back_has_float(toks: &[Tok], at: usize) -> bool {
    let mut start = at;
    let mut budget = 256usize;
    while start > 0 && budget > 0 {
        match toks[start - 1].kind {
            TokKind::Punct(';' | '{' | '}') => break,
            _ => {
                start -= 1;
                budget -= 1;
            }
        }
    }
    window_has_float(toks, start, at)
}

/// Index just past a `<…>` opened at `start - 1` (i.e. `start` is the
/// first token inside).
fn angle_end(toks: &[Tok], start: usize) -> usize {
    let mut depth = 1i32;
    let mut i = start;
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Punct('<') => depth += 1,
            TokKind::Punct('>') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Index of the `,` closing `fold`'s first argument (or the closing `)`),
/// with `start` just inside the call parens.
fn seed_arg_end(toks: &[Tok], start: usize) -> usize {
    let mut depth = 0i32;
    let mut i = start;
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Punct('(' | '[' | '{') => depth += 1,
            TokKind::Punct(')') if depth == 0 => return i,
            TokKind::Punct(')' | ']' | '}') => depth -= 1,
            TokKind::Punct(',') if depth == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    i
}

fn enclosing_fn(fns: &[FnDef], i: usize) -> Option<&FnDef> {
    fns.iter().find(|f| f.body.0 <= i && i < f.body.1)
}
