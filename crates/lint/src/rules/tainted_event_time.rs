//! `tainted-event-time`: nondeterminism flowing into event-time sinks.

use super::{RawFinding, Rule};
use crate::scope::Scope;
use crate::source::SourceFile;
use crate::taint;

/// Flags nondeterministic values reaching event-time and report sinks.
///
/// The token rules (`wall-clock`, `entropy-rng`, `unordered-iteration`)
/// flag the *sources*; this rule runs the [`crate::taint`] dataflow pass
/// to flag the *flows* they cannot see: a clock read laundered through a
/// `let` chain before landing in `ev.at`, a hash-map iteration binding
/// used to stamp `at:` in a struct literal, entropy folded into a
/// `SimReport`. One finding per sink, with the source named in the
/// message so the report reads as "what flowed where".
///
/// The pass is per-function and per-file (no cross-crate propagation);
/// the gaps are documented in DESIGN.md §10.
pub struct TaintedEventTime;

impl Rule for TaintedEventTime {
    fn id(&self) -> &'static str {
        "tainted-event-time"
    }

    fn description(&self) -> &'static str {
        "a nondeterministic value (wall clock, entropy, hash-iteration order) flows \
         through local bindings into an event-time field or SimReport: two \
         identically-seeded runs will diverge"
    }

    fn fix_hint(&self) -> &'static str {
        "derive event times from simulated time and seeded RNG only; keep host \
         clocks and entropy out of the dataflow that reaches .at and SimReport"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<RawFinding>) {
        let scope = Scope::new(&file.ast);
        for f in &file.ast.fns {
            for tf in taint::analyze_fn(f, &file.toks, &scope) {
                out.push(RawFinding {
                    line: tf.line,
                    message: tf.message,
                });
            }
        }
    }
}
