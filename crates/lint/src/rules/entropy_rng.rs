//! `entropy-rng`: OS-entropy-seeded randomness anywhere.

use super::{RawFinding, Rule};
use crate::lexer::TokKind;
use crate::source::SourceFile;

const ENTROPY_NAMES: &[&str] = &["thread_rng", "from_entropy", "OsRng", "getrandom"];

/// Flags entropy-seeded RNG construction (`thread_rng`, `from_entropy`,
/// `OsRng`, `getrandom`) and `rand::random`. Every random stream in the
/// simulator must derive from the run's explicit seed; an entropy-seeded
/// generator makes runs unreproducible even in test code, so this rule —
/// unlike the others — does not exempt `#[cfg(test)]` regions.
pub struct EntropyRng;

impl Rule for EntropyRng {
    fn id(&self) -> &'static str {
        "entropy-rng"
    }

    fn description(&self) -> &'static str {
        "entropy-seeded RNG: random streams must derive from the run's explicit seed"
    }

    fn fix_hint(&self) -> &'static str {
        "construct SmallRng::seed_from_u64(seed) (or split a seed from the run's master seed)"
    }

    fn exempts_test_code(&self) -> bool {
        false
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<RawFinding>) {
        let toks = &file.toks;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            if ENTROPY_NAMES.contains(&t.text.as_str()) {
                out.push(RawFinding {
                    line: t.line,
                    message: format!("`{}` seeds from OS entropy", t.text),
                });
            }
            // `rand::random` (turbofish or not): ident `rand`, `::`, ident `random`.
            if t.is_ident("rand")
                && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 3).is_some_and(|t| t.is_ident("random"))
            {
                out.push(RawFinding {
                    line: t.line,
                    message: "`rand::random` uses the entropy-seeded thread RNG".to_string(),
                });
            }
        }
    }
}
