//! The rule registry.
//!
//! Each rule is an independent visitor over a [`SourceFile`]'s token
//! stream with an id, a human description, and a fix hint. The driver
//! consults the [`Policy`](crate::policy::Policy) for the file's class to
//! decide whether the rule runs and at what severity; rules themselves
//! are policy-agnostic and only *find* patterns.

mod entropy_rng;
mod event_time;
mod float_accumulation;
mod panic_indexing;
mod shared_mut_parallel;
mod sim_unwrap;
mod tainted_event_time;
mod unordered;
mod wall_clock;

use crate::source::SourceFile;

pub use entropy_rng::EntropyRng;
pub use event_time::EventTimeRegression;
pub use float_accumulation::FloatAccumulation;
pub use panic_indexing::PanicIndexing;
pub use shared_mut_parallel::SharedMutParallel;
pub use sim_unwrap::SimUnwrap;
pub use tainted_event_time::TaintedEventTime;
pub use unordered::UnorderedIteration;
pub use wall_clock::WallClock;

/// Bumped whenever any rule's detection logic changes; part of the
/// incremental cache key (see [`crate::cache`]), so stale findings are
/// never replayed across a rules upgrade.
pub const RULES_VERSION: &str = "2";

/// A raw match a rule emitted, before policy/suppression filtering.
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// 1-based source line.
    pub line: u32,
    /// What was matched, specifically.
    pub message: String,
}

/// A determinism/invariant rule.
pub trait Rule {
    /// Stable kebab-case id, as used in the policy and in suppressions.
    fn id(&self) -> &'static str;
    /// One-line description of what the rule protects.
    fn description(&self) -> &'static str;
    /// How to fix a finding.
    fn fix_hint(&self) -> &'static str;
    /// Whether `#[cfg(test)]` / `#[test]` regions are exempt. Most rules
    /// exempt them (tests may panic and use hash maps freely); entropy
    /// rules do not (a nondeterministic test is still a flaky test).
    fn exempts_test_code(&self) -> bool {
        true
    }
    /// Scans one file, pushing matches into `out`.
    fn check(&self, file: &SourceFile, out: &mut Vec<RawFinding>);
}

/// All shipped rules, in reporting order.
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(UnorderedIteration),
        Box::new(WallClock),
        Box::new(EntropyRng),
        Box::new(SimUnwrap),
        Box::new(EventTimeRegression),
        Box::new(SharedMutParallel),
        Box::new(FloatAccumulation),
        Box::new(PanicIndexing),
        Box::new(TaintedEventTime),
    ]
}

/// Ids of all shipped rules plus the always-on meta rule.
pub fn rule_ids() -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = registry().iter().map(|r| r.id()).collect();
    ids.push(INVALID_SUPPRESSION);
    ids
}

/// Id of the meta rule that rejects malformed suppression comments. It is
/// not part of the registry: it cannot be configured down or suppressed —
/// a suppression without a justification must always fail the build.
pub const INVALID_SUPPRESSION: &str = "invalid-suppression";
