//! `shared-mut-parallel`: single-thread interior mutability in sim state.

use super::{RawFinding, Rule};
use crate::lexer::TokKind;
use crate::scope::{Scope, TypeClass};
use crate::source::SourceFile;

/// Interior-mutability wrappers that are not `Sync`: state behind one of
/// these mutates invisibly through `&self`, which the domain-parallel
/// driver (`DESIGN.md §12`) cannot see when it hands shared references to
/// feed workers. Thread-safe containers (`Mutex`, `RwLock`, atomics) are
/// deliberately not listed — the shared page tables use them on purpose.
const UNSYNC_CELLS: &[&str] = &["RefCell", "Cell", "UnsafeCell", "OnceCell", "LazyCell"];

/// Flags `RefCell`/`Cell`/`UnsafeCell`/`OnceCell`/`LazyCell` — spelled
/// directly or reached through an import rename or `type` alias — and
/// `static mut` in sim crates. Simulation state crosses threads under the
/// domain-parallel driver; non-`Sync` interior mutability either fails to
/// compile there or (via `static mut`/raw access) silently races, and
/// both read as shared-mutability designs the simulator must not grow.
/// The resolution pass mirrors [`super::UnorderedIteration`]: local names
/// resolving to an unsync cell are flagged at every use, with the
/// introducing declaration line left to the direct-spelling pass.
pub struct SharedMutParallel;

impl Rule for SharedMutParallel {
    fn id(&self) -> &'static str {
        "shared-mut-parallel"
    }

    fn description(&self) -> &'static str {
        "single-thread interior mutability (RefCell/Cell/static mut, or an alias \
         resolving to one) in simulator state: invisible to the domain-parallel \
         driver and unsound across threads"
    }

    fn fix_hint(&self) -> &'static str {
        "take &mut self instead, or use a Sync container (Mutex/RwLock/atomics) \
         if the state genuinely crosses domain workers"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<RawFinding>) {
        let mut prev_static_line: Option<u32> = None;
        for t in &file.toks {
            if t.kind != TokKind::Ident {
                continue;
            }
            if UNSYNC_CELLS.contains(&t.text.as_str()) {
                out.push(RawFinding {
                    line: t.line,
                    message: format!("`{}` is single-thread interior mutability", t.text),
                });
            }
            if t.text == "mut" {
                if let Some(line) = prev_static_line {
                    out.push(RawFinding {
                        line,
                        message: "`static mut` is unsynchronized global state".to_string(),
                    });
                }
            }
            prev_static_line = (t.text == "static").then_some(t.line);
        }
        let scope = Scope::new(&file.ast);
        for (name, decl_line, canon) in scope.resolved_names(TypeClass::UnsyncCell) {
            for t in &file.toks {
                if t.kind == TokKind::Ident && t.text == name && t.line != decl_line {
                    out.push(RawFinding {
                        line: t.line,
                        message: format!(
                            "`{name}` resolves to single-thread interior mutability `{canon}`"
                        ),
                    });
                }
            }
        }
    }
}
