//! `wall-clock`: host-time reads in simulated-time logic.

use super::{RawFinding, Rule};
use crate::lexer::TokKind;
use crate::source::SourceFile;

const CLOCK_NAMES: &[&str] = &["Instant", "SystemTime", "UNIX_EPOCH"];

/// Flags `std::time::Instant` / `SystemTime` (and `UNIX_EPOCH`) in sim
/// crates. Simulated time is `Cycle`; any host-clock read in sim logic
/// makes results depend on machine load and breaks reproducibility.
/// Wall-clock timing belongs in the bench/tools class, which disables
/// this rule.
pub struct WallClock;

impl Rule for WallClock {
    fn id(&self) -> &'static str {
        "wall-clock"
    }

    fn description(&self) -> &'static str {
        "host wall-clock read (Instant/SystemTime) in simulator logic: \
         results would depend on host timing, not simulated cycles"
    }

    fn fix_hint(&self) -> &'static str {
        "thread simulated time (Cycle) through instead; host timing belongs in crates/bench"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<RawFinding>) {
        for t in &file.toks {
            if t.kind == TokKind::Ident && CLOCK_NAMES.contains(&t.text.as_str()) {
                out.push(RawFinding {
                    line: t.line,
                    message: format!("`{}` reads the host clock", t.text),
                });
            }
        }
    }
}
