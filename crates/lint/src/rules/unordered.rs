//! `unordered-iteration`: hash-ordered collections in deterministic code.

use super::{RawFinding, Rule};
use crate::lexer::TokKind;
use crate::scope::{Scope, TypeClass};
use crate::source::SourceFile;

/// Names whose presence marks hash-ordered (iteration-order-unstable)
/// collections. `hash_map`/`hash_set` catch module-path imports such as
/// `std::collections::hash_map::Entry`; `RandomState` catches an explicit
/// nondeterministic hasher handed to an otherwise ordered wrapper.
const HASH_NAMES: &[&str] = &[
    "HashMap",
    "HashSet",
    "hash_map",
    "hash_set",
    "RandomState",
    "FxHashMap",
    "FxHashSet",
    "IndexMap",
    "IndexSet",
];

/// Flags every mention of a hash-ordered collection in a deterministic
/// crate class — spelled directly *or* reached through a local rename.
///
/// The rule enforces the stronger, mechanically checkable invariant the
/// simulator actually wants: *deterministic sim crates do not hold
/// hash-ordered collections at all* (outside test code). A lookup-only
/// `HashMap` is one refactor away from an order-dependent loop, and
/// `BTreeMap`/`BTreeSet` cost nothing at sim scale. Two passes:
///
/// 1. the token pass flags direct spellings (`HashMap`, `FxHashSet`, …);
/// 2. the resolution pass consults the per-file [`Scope`] for import
///    renames (`use … ::HashMap as Map`) and `type` aliases
///    (`type Cache = Map<K, V>`) that *resolve* to a hash-ordered type,
///    and flags every use of those names — struct fields, fn signatures,
///    and locals included. The introducing declaration line is skipped:
///    it already carries a token-pass finding for the underlying name.
///
/// Genuinely unreachable-by-iteration uses can carry a justified
/// `nocstar-lint: allow(unordered-iteration)` suppression.
pub struct UnorderedIteration;

impl Rule for UnorderedIteration {
    fn id(&self) -> &'static str {
        "unordered-iteration"
    }

    fn description(&self) -> &'static str {
        "hash-ordered collection (HashMap/HashSet, or an alias resolving to one) in a \
         deterministic sim crate: iteration order varies run to run and silently \
         breaks byte-identical reports"
    }

    fn fix_hint(&self) -> &'static str {
        "use BTreeMap/BTreeSet, or collect and sort explicitly before iterating"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<RawFinding>) {
        // Pass 1: direct spellings.
        for t in &file.toks {
            if t.kind == TokKind::Ident && HASH_NAMES.contains(&t.text.as_str()) {
                out.push(RawFinding {
                    line: t.line,
                    message: format!("`{}` is hash-ordered", t.text),
                });
            }
        }
        // Pass 2: names that resolve to a hash-ordered type.
        let scope = Scope::new(&file.ast);
        for (name, decl_line, canon) in scope.resolved_names(TypeClass::HashOrdered) {
            for t in &file.toks {
                if t.kind == TokKind::Ident && t.text == name && t.line != decl_line {
                    out.push(RawFinding {
                        line: t.line,
                        message: format!("`{name}` resolves to hash-ordered `{canon}`"),
                    });
                }
            }
        }
    }
}
