//! `unordered-iteration`: hash-ordered collections in deterministic code.

use super::{RawFinding, Rule};
use crate::lexer::TokKind;
use crate::source::SourceFile;

/// Names whose presence marks hash-ordered (iteration-order-unstable)
/// collections. `hash_map`/`hash_set` catch module-path imports such as
/// `std::collections::hash_map::Entry`; `RandomState` catches an explicit
/// nondeterministic hasher handed to an otherwise ordered wrapper.
const HASH_NAMES: &[&str] = &[
    "HashMap",
    "HashSet",
    "hash_map",
    "hash_set",
    "RandomState",
    "FxHashMap",
    "FxHashSet",
    "IndexMap",
    "IndexSet",
];

/// Flags every mention of a hash-ordered collection in a deterministic
/// crate class.
///
/// The analyzer is type-blind, so it cannot prove which individual maps
/// are iterated; instead the rule enforces the stronger, mechanically
/// checkable invariant the simulator actually wants: *deterministic sim
/// crates do not hold hash-ordered collections at all* (outside test
/// code). A lookup-only `HashMap` is one refactor away from an
/// order-dependent loop, and `BTreeMap`/`BTreeSet` cost nothing at sim
/// scale. Genuinely unreachable-by-iteration uses can carry a justified
/// `nocstar-lint: allow(unordered-iteration)` suppression.
pub struct UnorderedIteration;

impl Rule for UnorderedIteration {
    fn id(&self) -> &'static str {
        "unordered-iteration"
    }

    fn description(&self) -> &'static str {
        "hash-ordered collection (HashMap/HashSet) in a deterministic sim crate: \
         iteration order varies run to run and silently breaks byte-identical reports"
    }

    fn fix_hint(&self) -> &'static str {
        "use BTreeMap/BTreeSet, or collect and sort explicitly before iterating"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<RawFinding>) {
        for t in &file.toks {
            if t.kind == TokKind::Ident && HASH_NAMES.contains(&t.text.as_str()) {
                out.push(RawFinding {
                    line: t.line,
                    message: format!("`{}` is hash-ordered", t.text),
                });
            }
        }
    }
}
