//! `sim-unwrap`: panicking extraction in simulator hot paths.

use super::{RawFinding, Rule};
use crate::source::SourceFile;

/// Flags `.unwrap()` / `.expect(…)` method calls outside test code.
///
/// Simulation code must degrade through `SimError` (with a diagnostic
/// snapshot) instead of panicking: a panic mid-run loses the partial
/// report and the fault diagnostics the abort machinery exists to
/// produce. This replaces the old grep/clippy gate in `scripts/ci.sh`
/// with real awareness of `#[cfg(test)]` modules, strings, and comments,
/// and extends it from three crates to every sim crate.
///
/// Matching is exact on the method name: `unwrap_or`, `unwrap_or_else`,
/// `unwrap_or_default`, and `expect_err` are different identifiers and do
/// not match. `self.unwrap(…)` / `self.expect(…)` are also skipped: a
/// crate cannot add inherent methods to `Option`/`Result`, so a call
/// whose receiver is literally `self` is always a custom method (e.g.
/// the JSON parser's `fn expect(&mut self, byte: u8) -> Result<…>`),
/// never std's panicking extractor.
pub struct SimUnwrap;

impl Rule for SimUnwrap {
    fn id(&self) -> &'static str {
        "sim-unwrap"
    }

    fn description(&self) -> &'static str {
        "unwrap()/expect() in simulator code: panics lose the partial report \
         and diagnostics; sim code must degrade through SimError"
    }

    fn fix_hint(&self) -> &'static str {
        "propagate a SimError (or restructure so the invariant is type-level); \
         if the invariant is locally provable, suppress with a justification"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<RawFinding>) {
        let toks = &file.toks;
        for (i, t) in toks.iter().enumerate() {
            let is_call = (t.is_ident("unwrap") || t.is_ident("expect"))
                && i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('));
            let custom_self_method = i >= 2 && toks[i - 2].is_ident("self");
            if is_call && !custom_self_method {
                out.push(RawFinding {
                    line: t.line,
                    message: format!("`.{}()` panics on the failure path", t.text),
                });
            }
        }
    }
}
