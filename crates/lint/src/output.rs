//! Report rendering: human-readable, JSON, and SARIF 2.1.0.
//!
//! JSON and SARIF both serialize through `nocstar-json`, so equal reports
//! always produce byte-identical artifacts (the same property the
//! simulator's golden harness relies on).

use crate::policy::Severity;
use crate::{Finding, Report};
use nocstar_json::Json;
use std::fmt::Write as _;

/// Human-readable rendering, one line per finding plus a summary.
pub fn human(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let _ = writeln!(
            out,
            "{}[{}]: {}:{}: {}\n    hint: {}",
            f.severity,
            f.rule,
            f.path.display(),
            f.line,
            f.message,
            f.hint
        );
    }
    let errors = report.error_count();
    let warns = report.findings.len() - errors;
    let cached = report.files_scanned - report.files_reanalyzed.min(report.files_scanned);
    let _ = writeln!(
        out,
        "nocstar-lint: {} file(s) scanned ({} re-analyzed, {cached} cached), \
         {errors} error(s), {warns} warning(s), {} justified suppression(s)",
        report.files_scanned,
        report.files_reanalyzed,
        report.suppressed.len()
    );
    out
}

fn finding_json(f: &Finding) -> Json {
    Json::obj(vec![
        ("rule", Json::str(&f.rule)),
        ("severity", Json::str(f.severity.name())),
        ("path", Json::str(f.path.to_string_lossy())),
        ("line", Json::U64(u64::from(f.line))),
        ("message", Json::str(&f.message)),
        ("hint", Json::str(&f.hint)),
    ])
}

/// JSON report: full findings, suppressions, and counts.
pub fn json(report: &Report) -> String {
    Json::obj(vec![
        ("tool", Json::str("nocstar-lint")),
        ("files_scanned", Json::U64(report.files_scanned as u64)),
        (
            "files_reanalyzed",
            Json::U64(report.files_reanalyzed as u64),
        ),
        ("errors", Json::U64(report.error_count() as u64)),
        (
            "findings",
            Json::Arr(report.findings.iter().map(finding_json).collect()),
        ),
        (
            "suppressed",
            Json::Arr(report.suppressed.iter().map(finding_json).collect()),
        ),
    ])
    .to_string_pretty()
}

/// SARIF 2.1.0 report (the interchange format CI systems and code-scanning
/// UIs ingest). Suppressed findings are omitted; rule metadata rides in
/// `tool.driver.rules`.
pub fn sarif(report: &Report) -> String {
    let rules: Vec<Json> = crate::rules::registry()
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("id", Json::str(r.id())),
                (
                    "shortDescription",
                    Json::obj(vec![("text", Json::str(r.description()))]),
                ),
                ("help", Json::obj(vec![("text", Json::str(r.fix_hint()))])),
            ])
        })
        .collect();
    let results: Vec<Json> = report
        .findings
        .iter()
        .map(|f| {
            let level = match f.severity {
                Severity::Error => "error",
                Severity::Warn => "warning",
                Severity::Allow => "note",
            };
            Json::obj(vec![
                ("ruleId", Json::str(&f.rule)),
                ("level", Json::str(level)),
                ("message", Json::obj(vec![("text", Json::str(&f.message))])),
                (
                    "locations",
                    Json::Arr(vec![Json::obj(vec![(
                        "physicalLocation",
                        Json::obj(vec![
                            (
                                "artifactLocation",
                                Json::obj(vec![
                                    (
                                        "uri",
                                        Json::str(f.path.to_string_lossy().replace('\\', "/")),
                                    ),
                                    ("uriBaseId", Json::str("SRCROOT")),
                                ]),
                            ),
                            (
                                "region",
                                Json::obj(vec![("startLine", Json::U64(u64::from(f.line)))]),
                            ),
                        ]),
                    )])]),
                ),
            ])
        })
        .collect();
    Json::obj(vec![
        ("version", Json::str("2.1.0")),
        (
            "$schema",
            Json::str("https://json.schemastore.org/sarif-2.1.0.json"),
        ),
        (
            "runs",
            Json::Arr(vec![Json::obj(vec![
                (
                    "tool",
                    Json::obj(vec![(
                        "driver",
                        Json::obj(vec![
                            ("name", Json::str("nocstar-lint")),
                            ("rules", Json::Arr(rules)),
                        ]),
                    )]),
                ),
                ("results", Json::Arr(results)),
            ])]),
        ),
    ])
    .to_string_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn sample() -> Report {
        Report {
            findings: vec![Finding {
                rule: "sim-unwrap".into(),
                severity: Severity::Error,
                path: PathBuf::from("crates/x/src/a.rs"),
                line: 7,
                message: "`.unwrap()` panics on the failure path".into(),
                hint: "propagate a SimError".into(),
            }],
            suppressed: vec![],
            files_scanned: 3,
            files_reanalyzed: 2,
        }
    }

    #[test]
    fn human_output_names_rule_path_and_line() {
        let text = human(&sample());
        assert!(text.contains("error[sim-unwrap]: crates/x/src/a.rs:7:"));
        assert!(text.contains("1 error(s)"));
        assert!(text.contains("(2 re-analyzed, 1 cached)"), "{text}");
    }

    #[test]
    fn json_and_sarif_are_valid_and_deterministic() {
        let r = sample();
        let j1 = json(&r);
        let s1 = sarif(&r);
        assert_eq!(j1, json(&r));
        assert_eq!(s1, sarif(&r));
        let parsed = nocstar_json::Json::parse(&j1).unwrap();
        assert_eq!(parsed.get("errors").unwrap().as_u64(), Some(1));
        let parsed = nocstar_json::Json::parse(&s1).unwrap();
        assert_eq!(
            parsed.get("version").unwrap().as_str(),
            Some("2.1.0"),
            "SARIF version"
        );
        let runs = parsed.get("runs").unwrap().as_array().unwrap();
        let results = runs[0].get("results").unwrap().as_array().unwrap();
        assert_eq!(
            results[0].get("ruleId").unwrap().as_str(),
            Some("sim-unwrap")
        );
    }
}
