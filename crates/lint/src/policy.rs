//! The lint policy: which crate directories belong to which class, and
//! which rules run (at which severity) for each class.
//!
//! The policy lives in `nocstar-lint.toml` at the workspace root. The
//! build environment vendors no TOML crate, so this module parses the
//! small TOML subset the policy actually uses: `[section]` headers and
//! `"key" = "value"` pairs (keys may be bare or quoted), with `#`
//! comments. Anything outside that subset is a hard error — a policy
//! typo must fail CI, not silently disable a rule.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// How severe a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Rule disabled for the class.
    Allow,
    /// Reported, but does not fail the build.
    Warn,
    /// Reported and fails the build.
    Error,
}

impl Severity {
    /// Parses a lowercase severity name (`allow`/`warn`/`error`).
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "allow" => Some(Severity::Allow),
            "warn" => Some(Severity::Warn),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }

    /// Lowercase name, as written in the policy and reports.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A parsed policy file.
#[derive(Debug, Clone, Default)]
pub struct Policy {
    /// Workspace-relative source directory → class name
    /// (e.g. `"crates/core"` → `"sim"`).
    pub crates: BTreeMap<String, String>,
    /// Class name → (rule id → severity).
    pub rules: BTreeMap<String, BTreeMap<String, Severity>>,
    /// Workspace-relative file path → rule id exempted for that file
    /// (the file *owns* the invariant the rule protects).
    pub exempt: BTreeMap<String, Vec<String>>,
    /// FNV-1a hash of the policy text this was parsed from — part of the
    /// incremental cache key, so editing the policy re-lints everything.
    pub source_hash: u64,
}

/// A policy parse or validation error with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyError {
    /// 1-based line in the policy file (0 for file-level errors).
    pub line: u32,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "policy error (line {}): {}", self.line, self.message)
    }
}

impl std::error::Error for PolicyError {}

impl Policy {
    /// Reads and parses the policy at `path`.
    ///
    /// # Errors
    ///
    /// [`PolicyError`] when the file is unreadable or malformed.
    pub fn load(path: &Path) -> Result<Policy, PolicyError> {
        let text = std::fs::read_to_string(path).map_err(|e| PolicyError {
            line: 0,
            message: format!("cannot read {}: {e}", path.display()),
        })?;
        Policy::parse(&text)
    }

    /// Parses policy text.
    ///
    /// # Errors
    ///
    /// [`PolicyError`] on the first malformed or unknown construct.
    pub fn parse(text: &str) -> Result<Policy, PolicyError> {
        let mut policy = Policy {
            source_hash: crate::cache::fnv1a(text.as_bytes()),
            ..Policy::default()
        };
        let mut section: Option<String> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let err = |message: String| PolicyError {
                line: lineno,
                message,
            };
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let name = name
                    .strip_suffix(']')
                    .ok_or_else(|| err("unclosed section header".into()))?
                    .trim();
                section = Some(name.to_string());
                continue;
            }
            let (key, value) = parse_pair(line).map_err(&err)?;
            match section.as_deref() {
                Some("crates") => {
                    policy.crates.insert(key, value);
                }
                Some(s) if s.starts_with("rules.") => {
                    let class = s["rules.".len()..].to_string();
                    let sev = Severity::parse(&value)
                        .ok_or_else(|| err(format!("unknown severity `{value}`")))?;
                    policy.rules.entry(class).or_default().insert(key, sev);
                }
                Some("exempt") => {
                    policy.exempt.entry(key).or_default().push(value);
                }
                Some(other) => return Err(err(format!("unknown section `[{other}]`"))),
                None => return Err(err("entry before any [section]".into())),
            }
        }
        policy.validate()?;
        Ok(policy)
    }

    fn validate(&self) -> Result<(), PolicyError> {
        let err = |message: String| PolicyError { line: 0, message };
        if self.crates.is_empty() {
            return Err(err("policy maps no crate directories".into()));
        }
        for (dir, class) in &self.crates {
            if !self.rules.contains_key(class) {
                return Err(err(format!(
                    "`{dir}` is class `{class}` but there is no [rules.{class}] section"
                )));
            }
        }
        let known = crate::rules::rule_ids();
        for (class, rules) in &self.rules {
            for rule in rules.keys() {
                if !known.contains(&rule.as_str()) {
                    return Err(err(format!(
                        "[rules.{class}] configures unknown rule `{rule}` \
                         (known: {})",
                        known.join(", ")
                    )));
                }
            }
        }
        for rules in self.exempt.values() {
            for rule in rules {
                if !known.contains(&rule.as_str()) {
                    return Err(err(format!("[exempt] names unknown rule `{rule}`")));
                }
            }
        }
        Ok(())
    }

    /// Severity of `rule` for files of `class` (Allow when unconfigured).
    pub fn severity(&self, class: &str, rule: &str) -> Severity {
        self.rules
            .get(class)
            .and_then(|m| m.get(rule))
            .copied()
            .unwrap_or(Severity::Allow)
    }

    /// True when `path` (workspace-relative) is exempt from `rule`.
    pub fn exempted(&self, path: &str, rule: &str) -> bool {
        self.exempt
            .get(path)
            .is_some_and(|rules| rules.iter().any(|r| r == rule))
    }
}

/// Strips a trailing `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `key = "value"` where key is bare or quoted.
fn parse_pair(line: &str) -> Result<(String, String), String> {
    let (key, value) = line
        .split_once('=')
        .ok_or_else(|| format!("expected `key = \"value\"`, found `{line}`"))?;
    let key = unquote(key.trim())?;
    let value = unquote(value.trim())?;
    Ok((key, value))
}

fn unquote(s: &str) -> Result<String, String> {
    if let Some(inner) = s.strip_prefix('"') {
        let inner = inner
            .strip_suffix('"')
            .ok_or_else(|| format!("unterminated string `{s}`"))?;
        if inner.contains('"') {
            return Err(format!("stray quote inside `{s}`"));
        }
        Ok(inner.to_string())
    } else if s.is_empty() || s.contains(char::is_whitespace) {
        Err(format!("bare key/value `{s}` may not contain whitespace"))
    } else {
        Ok(s.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
        # comment
        [crates]
        "crates/core" = "sim"
        "crates/bench" = "tools"

        [rules.sim]
        sim-unwrap = "error"    # trailing comment
        wall-clock = "warn"

        [rules.tools]
        entropy-rng = "error"

        [exempt]
        "crates/core/src/event.rs" = "event-time-regression"
    "#;

    #[test]
    fn parses_the_full_shape() {
        let p = Policy::parse(GOOD).unwrap();
        assert_eq!(p.crates["crates/core"], "sim");
        assert_eq!(p.severity("sim", "sim-unwrap"), Severity::Error);
        assert_eq!(p.severity("sim", "wall-clock"), Severity::Warn);
        assert_eq!(p.severity("sim", "entropy-rng"), Severity::Allow);
        assert_eq!(p.severity("nonexistent", "sim-unwrap"), Severity::Allow);
        assert!(p.exempted("crates/core/src/event.rs", "event-time-regression"));
        assert!(!p.exempted("crates/core/src/sim.rs", "event-time-regression"));
    }

    #[test]
    fn rejects_malformed_and_unknown_constructs() {
        for (bad, why) in [
            ("key = \"v\"", "entry before section"),
            ("[crates]\nbroken line", "no equals"),
            ("[what]\nk = \"v\"", "unknown section"),
            (
                "[crates]\n\"crates/x\" = \"sim\"\n[rules.sim]\nnot-a-rule = \"error\"",
                "unknown rule",
            ),
            (
                "[crates]\n\"crates/x\" = \"sim\"\n[rules.sim]\nsim-unwrap = \"fatal\"",
                "unknown severity",
            ),
            (
                "[crates]\n\"crates/x\" = \"ghost\"",
                "missing class section",
            ),
        ] {
            assert!(Policy::parse(bad).is_err(), "accepted: {why}");
        }
    }
}
