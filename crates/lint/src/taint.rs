//! Forward dataflow-lite: "nondeterministic" taint propagation.
//!
//! Sources are the things that make two identically-seeded runs differ:
//! host-clock reads (`Instant`, `SystemTime`), entropy-seeded RNG
//! (`thread_rng`, `from_entropy`, `OsRng`, `rand::random`), and
//! iteration over a hash-ordered collection (resolved through the
//! [`crate::scope`] table, so a `HashMap` behind an alias or a struct
//! field still counts). Taint propagates forward through `let` chains
//! (`let t = source(); let u = t + 1;` taints `u`) and `for` bindings
//! (`for k in map.keys()` taints `k`); any expression mentioning a
//! tainted name is tainted.
//!
//! Sinks are where nondeterminism becomes a wrong *report* rather than
//! just a wrong value: writes to an event-time field (`ev.at = …`,
//! `at: …` in a struct literal) and `SimReport { … }` construction.
//! The pass is per-function and flow-insensitive below statement
//! granularity — sound enough to catch the let-chain smuggling the
//! token rules cannot see, cheap enough to run on every lint.

use crate::lexer::{Tok, TokKind};
use crate::parser::FnDef;
use crate::scope::{Scope, TypeClass};
use std::collections::BTreeSet;

/// Identifiers that read host time or OS entropy — taint sources on
/// sight, matching the `wall-clock` / `entropy-rng` token rules.
const SOURCE_IDENTS: &[&str] = &[
    "Instant",
    "SystemTime",
    "UNIX_EPOCH",
    "thread_rng",
    "from_entropy",
    "OsRng",
    "getrandom",
];

/// Methods that iterate a collection in its own order; on a hash-ordered
/// receiver these yield values in a run-varying order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_keys",
    "into_values",
];

/// Event-time field names, shared with the `event-time-regression` rule.
const TIME_FIELDS: &[&str] = &["at"];

/// Report types whose construction is a determinism sink.
const REPORT_TYPES: &[&str] = &["SimReport"];

/// One taint-flow finding.
#[derive(Debug, Clone)]
pub struct TaintFinding {
    /// 1-based line of the sink.
    pub line: u32,
    /// What flowed where.
    pub message: String,
}

/// Runs the taint pass over one function.
pub fn analyze_fn(f: &FnDef, toks: &[Tok], scope: &Scope<'_>) -> Vec<TaintFinding> {
    let mut tainted: BTreeSet<String> = BTreeSet::new();

    // Forward pass over the binding statements, in source order. `let`
    // bindings and `for` bindings are interleaved by line so a `for`
    // over a tainted let-bound iterator taints its binding.
    let mut events: Vec<(u32, Event<'_>)> = Vec::new();
    for l in &f.lets {
        if let Some(init) = l.init {
            events.push((l.line, Event::Let(l.name.as_str(), init)));
        }
    }
    for fl in &f.fors {
        if let Some(b) = &fl.binding {
            events.push((fl.line, Event::For(b.as_str(), fl.iter)));
        }
    }
    events.sort_by_key(|(line, _)| *line);
    for (_, ev) in events {
        let (name, range) = match ev {
            Event::Let(name, range) | Event::For(name, range) => (name, range),
        };
        if expr_taint(f, toks, range, &tainted, scope).is_some() {
            tainted.insert(name.to_string());
        }
    }

    // Sink pass over the whole body.
    let mut out = Vec::new();
    let (start, end) = f.body;
    let end = end.min(toks.len());
    let mut i = start;
    while i < end {
        let t = &toks[i];
        // `.at = rhs` / `.at += rhs` / `.at -= rhs`
        if i > start && toks[i - 1].is_punct('.') && TIME_FIELDS.iter().any(|n| t.is_ident(n)) {
            let assign_rhs = match (toks.get(i + 1), toks.get(i + 2)) {
                (Some(n1), Some(n2)) if n1.is_punct('=') && !n2.is_punct('=') => Some(i + 2),
                (Some(n1), Some(n2))
                    if (n1.is_punct('+') || n1.is_punct('-')) && n2.is_punct('=') =>
                {
                    Some(i + 3)
                }
                _ => None,
            };
            if let Some(rhs) = assign_rhs {
                let rhs_end = stmt_end(toks, rhs, end);
                if let Some(desc) = expr_taint(f, toks, (rhs, rhs_end), &tainted, scope) {
                    out.push(TaintFinding {
                        line: t.line,
                        message: format!(
                            "event time `.{}` is set from a nondeterministic value ({desc})",
                            t.text
                        ),
                    });
                }
                i = rhs_end;
                continue;
            }
        }
        // Struct-literal field init `at: expr` (preceded by `{` or `,`).
        if t.kind == TokKind::Ident
            && TIME_FIELDS.contains(&t.text.as_str())
            && i > start
            && (toks[i - 1].is_punct('{') || toks[i - 1].is_punct(','))
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && !toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
        {
            let val_start = i + 2;
            let val_end = field_init_end(toks, val_start, end);
            if let Some(desc) = expr_taint(f, toks, (val_start, val_end), &tainted, scope) {
                out.push(TaintFinding {
                    line: t.line,
                    message: format!(
                        "event-time field `{}:` is initialized from a nondeterministic \
                         value ({desc})",
                        t.text
                    ),
                });
            }
            i = val_end;
            continue;
        }
        // `SimReport { … }` construction with any tainted field value.
        if t.kind == TokKind::Ident
            && REPORT_TYPES.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct('{'))
        {
            let lit_end = brace_end(toks, i + 1, end);
            if let Some(desc) = expr_taint(f, toks, (i + 2, lit_end), &tainted, scope) {
                out.push(TaintFinding {
                    line: t.line,
                    message: format!(
                        "`{}` is constructed from a nondeterministic value ({desc})",
                        t.text
                    ),
                });
            }
            i = lit_end;
            continue;
        }
        i += 1;
    }
    out
}

enum Event<'a> {
    Let(&'a str, (usize, usize)),
    For(&'a str, (usize, usize)),
}

/// Returns a source description when the expression in `range` is
/// tainted: it mentions a source identifier, iterates a hash-ordered
/// receiver, or mentions an already-tainted name.
fn expr_taint(
    f: &FnDef,
    toks: &[Tok],
    range: (usize, usize),
    tainted: &BTreeSet<String>,
    scope: &Scope<'_>,
) -> Option<String> {
    let (start, end) = range;
    let end = end.min(toks.len());
    for i in start..end {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if SOURCE_IDENTS.contains(&t.text.as_str()) {
            return Some(format!("wall-clock/entropy source `{}`", t.text));
        }
        // `rand::random`
        if t.is_ident("rand")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("random"))
        {
            return Some("entropy source `rand::random`".to_string());
        }
        if tainted.contains(&t.text) {
            return Some(format!("flows through `{}`", t.text));
        }
        // Hash-order iteration: `.iter()` / `.keys()` / … on a receiver
        // resolving to a hash-ordered collection.
        if ITER_METHODS.contains(&t.text.as_str())
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && scope.classify_receiver(f, toks, i - 1) == TypeClass::HashOrdered
        {
            return Some(format!("hash-ordered iteration via `.{}()`", t.text));
        }
    }
    None
}

/// Index just past a statement's expression: the `;` closing it at
/// depth 0, or the end of the surrounding block.
fn stmt_end(toks: &[Tok], start: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = start;
    while i < end {
        match toks[i].kind {
            TokKind::Punct('(' | '[' | '{') => depth += 1,
            TokKind::Punct(')' | ']' | '}') => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            TokKind::Punct(';') if depth == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Index just past a struct-literal field initializer: the `,` or `}`
/// closing it at depth 0.
fn field_init_end(toks: &[Tok], start: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = start;
    while i < end {
        match toks[i].kind {
            TokKind::Punct('(' | '[' | '{') => depth += 1,
            TokKind::Punct(')' | ']') => depth -= 1,
            TokKind::Punct('}') => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            TokKind::Punct(',') if depth == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Index just past the `}` matching the `{` at `open`.
fn brace_end(toks: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < end {
        match toks[i].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn findings(src: &str) -> Vec<TaintFinding> {
        let toks = lex(src).toks;
        let ast = parse(&toks);
        let scope = Scope::new(&ast);
        ast.fns
            .iter()
            .flat_map(|f| analyze_fn(f, &toks, &scope))
            .collect()
    }

    #[test]
    fn taint_flows_through_let_chains_into_at() {
        let src = "fn f(ev: &mut Ev) {\n\
                   let t0 = Instant::now();\n\
                   let dt = t0.elapsed().as_nanos() as u64;\n\
                   ev.at = dt;\n}";
        let out = findings(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 4);
        assert!(out[0].message.contains("flows through `dt`"), "{out:?}");
    }

    #[test]
    fn clean_event_time_is_not_flagged() {
        let src = "fn f(ev: &mut Ev, now: u64) { ev.at = now + 3; let e = Ev { at: now }; }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn hash_iteration_taints_the_for_binding() {
        let src = "use std::collections::HashMap;\n\
                   struct S { m: HashMap<u64, u64> }\n\
                   impl S { fn f(&self, evs: &mut Vec<Ev>) {\n\
                   for k in self.m.keys() {\n  evs.push(Ev { at: *k });\n}\n} }";
        let out = findings(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("at"), "{out:?}");
    }

    #[test]
    fn sim_report_literal_is_a_sink() {
        let src = "fn f() -> SimReport {\n\
                   let jitter = rand::random::<u64>();\n\
                   SimReport { walks: jitter }\n}";
        let out = findings(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("SimReport"));
    }

    #[test]
    fn comparisons_do_not_count_as_writes() {
        let src = "fn f(ev: &Ev) -> bool { let t = Instant::now().elapsed().as_nanos() as u64; \
                   ev.at == t }";
        assert!(findings(src).is_empty());
    }
}
