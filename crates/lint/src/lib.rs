//! # nocstar-lint — determinism & simulator-invariant static analysis
//!
//! NOCSTAR's headline results rest on byte-identical, seed-deterministic
//! cycle-level reports. The runtime guards (golden snapshots, the
//! determinism suite) catch drift *after* it happens; this crate catches
//! the three classic ways drift lands — hash-ordered iteration,
//! wall-clock reads, entropy-seeded RNG — plus two simulator invariants
//! (no panicking extraction in sim code, no in-place event-timestamp
//! mutation) at analysis time.
//!
//! The environment vendors no `syn`, so the analyzer builds its own
//! stack: a small Rust lexer ([`lexer`]) feeds an AST-lite
//! recursive-descent parser ([`parser`]) covering the subset the repo
//! uses (items, `use` paths, `impl` blocks, fn signatures, typed `let`
//! bindings, struct/enum fields), a per-file scope table ([`scope`])
//! that chases import renames and `type` aliases to resolve collection
//! and cell types, and a forward dataflow-lite pass ([`taint`]) that
//! propagates nondeterministic taint through `let` chains into
//! event-time and `SimReport` sinks. Rule visitors ([`rules`]) combine
//! token patterns with these resolved views; `#[cfg(test)]` regions,
//! string/char literals and comments are excluded soundly. Rules are
//! configured per crate *class* (deterministic sim crates vs. bench/
//! tools) by a TOML policy file ([`policy`], `nocstar-lint.toml` at the
//! workspace root). Findings can be suppressed inline with
//! `// nocstar-lint: allow(<rule>): <justification>` — the justification
//! is mandatory, its absence is itself a build-failing finding, and a
//! suppression whose rules ran but matched nothing is *stale* and fails
//! the build too. Workspace runs are incremental via [`cache`].
//!
//! Run it as `cargo run -p nocstar-lint`; see `--help` for output
//! formats (human, JSON, SARIF), cache control, and CI wiring.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod lexer;
pub mod output;
pub mod parser;
pub mod policy;
pub mod rules;
pub mod scope;
pub mod source;
pub mod taint;

use cache::Cache;
use policy::{Policy, Severity};
use rules::INVALID_SUPPRESSION;
use source::SourceFile;
use std::path::{Path, PathBuf};

/// One reportable finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (`sim-unwrap`, …, or `invalid-suppression`).
    pub rule: String,
    /// Severity under the file's class policy.
    pub severity: Severity,
    /// Workspace-relative path.
    pub path: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// What was found.
    pub message: String,
    /// How to fix it.
    pub hint: String,
}

/// The result of linting a file set.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, in (path, line, rule) order.
    pub findings: Vec<Finding>,
    /// Findings silenced by a justified suppression (kept for the JSON
    /// report so CI artifacts show what is being waived and why).
    pub suppressed: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Number of files actually analyzed this run (the rest were served
    /// from the incremental cache). Equals `files_scanned` on uncached
    /// runs.
    pub files_reanalyzed: usize,
}

impl Report {
    /// Number of error-severity findings (what CI fails on).
    pub fn error_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: Report) {
        self.findings.extend(other.findings);
        self.suppressed.extend(other.suppressed);
        self.files_scanned += other.files_scanned;
        self.files_reanalyzed += other.files_reanalyzed;
    }

    /// Canonical ordering for deterministic output.
    pub fn sort(&mut self) {
        let key = |f: &Finding| (f.path.clone(), f.line, f.rule.clone());
        self.findings.sort_by_key(key);
        self.suppressed.sort_by_key(key);
    }
}

/// Lints one file's source text under the class's policy. `rel_path` is
/// the workspace-relative path used for reporting and `[exempt]` lookup.
pub fn lint_source(rel_path: &Path, class: &str, text: &str, policy: &Policy) -> Report {
    let file = SourceFile::analyze(rel_path.to_path_buf(), class, text);
    let mut report = Report {
        files_scanned: 1,
        files_reanalyzed: 1,
        ..Report::default()
    };
    let rel = rel_path.to_string_lossy();
    let registry = rules::registry();
    let mut used_suppressions = std::collections::BTreeSet::new();
    for rule in &registry {
        let severity = policy.severity(class, rule.id());
        if severity == Severity::Allow || policy.exempted(&rel, rule.id()) {
            continue;
        }
        let mut raw = Vec::new();
        rule.check(&file, &mut raw);
        for r in raw {
            if rule.exempts_test_code() && file.in_test_code(r.line) {
                continue;
            }
            let finding = Finding {
                rule: rule.id().to_string(),
                severity,
                path: rel_path.to_path_buf(),
                line: r.line,
                message: r.message,
                hint: rule.fix_hint().to_string(),
            };
            if let Some(idx) = file.suppression_index(rule.id(), r.line) {
                used_suppressions.insert(idx);
                report.suppressed.push(finding);
            } else {
                report.findings.push(finding);
            }
        }
    }
    // Malformed suppressions are always errors, in every class, and are
    // themselves unsuppressable.
    for (line, why) in &file.bad_suppressions {
        report
            .findings
            .push(invalid_suppression(rel_path, *line, why.clone()));
    }
    // Stale / nonsense suppressions. A well-formed suppression that names
    // an unknown rule (or the meta rule itself) is malformed; one whose
    // rules all *ran* on its covered lines yet silenced nothing is stale
    // — the code it excused was fixed, so the comment must go too.
    for (idx, s) in file.suppressions.iter().enumerate() {
        let mut problems: Vec<String> = Vec::new();
        for rid in &s.rules {
            if rid == INVALID_SUPPRESSION {
                problems.push(format!("`{rid}` cannot be suppressed"));
            } else if !registry.iter().any(|r| r.id() == rid) {
                problems.push(format!("unknown rule `{rid}`"));
            }
        }
        if !problems.is_empty() {
            report.findings.push(invalid_suppression(
                rel_path,
                s.line,
                format!("suppression names {}", problems.join(", ")),
            ));
            continue;
        }
        if used_suppressions.contains(&idx) {
            continue;
        }
        let covered_in_test = file.in_test_code(s.covers.0) || file.in_test_code(s.covers.1);
        let all_ran = s.rules.iter().all(|rid| {
            let rule = registry
                .iter()
                .find(|r| r.id() == rid)
                .expect("unknown rules handled above");
            policy.severity(class, rid) != Severity::Allow
                && !policy.exempted(&rel, rid)
                && !(rule.exempts_test_code() && covered_in_test)
        });
        if all_ran {
            report.findings.push(invalid_suppression(
                rel_path,
                s.line,
                format!(
                    "stale suppression: `allow({})` matched no finding on the lines it \
                     covers — delete the comment",
                    s.rules.join(", ")
                ),
            ));
        }
    }
    report
}

fn invalid_suppression(rel_path: &Path, line: u32, message: String) -> Finding {
    Finding {
        rule: INVALID_SUPPRESSION.to_string(),
        severity: Severity::Error,
        path: rel_path.to_path_buf(),
        line,
        message,
        hint: "every suppression must carry a non-empty justification and silence \
               at least one live finding"
            .to_string(),
    }
}

/// Lints every `src/` tree the policy classifies, rooted at `root`,
/// without a cache (every file is analyzed).
///
/// # Errors
///
/// An error string naming the first unreadable directory or file.
pub fn lint_workspace(root: &Path, policy: &Policy) -> Result<Report, String> {
    lint_workspace_cached(root, policy, None)
}

/// Lints every `src/` tree the policy classifies, rooted at `root`,
/// serving unchanged files from `cache` when one is supplied. Fresh
/// results are inserted into the cache; the caller persists it (see
/// [`Cache::save`]). Files whose content hash hits the cache count
/// toward `files_scanned` but not `files_reanalyzed`.
///
/// # Errors
///
/// An error string naming the first unreadable directory or file.
pub fn lint_workspace_cached(
    root: &Path,
    policy: &Policy,
    mut cache: Option<&mut Cache>,
) -> Result<Report, String> {
    let mut report = Report::default();
    for (dir, class) in &policy.crates {
        let src = root.join(dir).join("src");
        if !src.is_dir() {
            return Err(format!(
                "policy classifies `{dir}` but `{}` is not a directory",
                src.display()
            ));
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for path in files {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            let rel_str = rel.to_string_lossy().to_string();
            let hash = cache::fnv1a(text.as_bytes());
            if let Some(entry) = cache.as_deref().and_then(|c| c.lookup(&rel_str, hash)) {
                report.merge(Report {
                    findings: entry.findings.clone(),
                    suppressed: entry.suppressed.clone(),
                    files_scanned: 1,
                    files_reanalyzed: 0,
                });
                continue;
            }
            let file_report = lint_source(&rel, class, &text, policy);
            if let Some(c) = cache.as_deref_mut() {
                c.insert(
                    &rel_str,
                    hash,
                    file_report.findings.clone(),
                    file_report.suppressed.clone(),
                );
            }
            report.merge(file_report);
        }
    }
    report.sort();
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_policy() -> Policy {
        Policy::parse(
            r#"
            [crates]
            "crates/x" = "sim"
            [rules.sim]
            unordered-iteration = "error"
            wall-clock = "error"
            entropy-rng = "error"
            sim-unwrap = "error"
            event-time-regression = "error"
            [exempt]
            "crates/x/src/event.rs" = "event-time-regression"
            "#,
        )
        .unwrap()
    }

    fn lint(path: &str, src: &str) -> Report {
        lint_source(Path::new(path), "sim", src, &sim_policy())
    }

    #[test]
    fn findings_in_test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n  use std::collections::HashMap;\n  fn f() { x.unwrap(); }\n}";
        let r = lint("crates/x/src/a.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn exempt_file_skips_only_its_rule() {
        let src = "fn f() { e.at = now; let m = std::collections::HashMap::new(); }";
        let r = lint("crates/x/src/event.rs", src);
        let rules: Vec<&str> = r.findings.iter().map(|f| f.rule.as_str()).collect();
        assert!(!rules.contains(&"event-time-regression"), "{rules:?}");
        assert!(rules.contains(&"unordered-iteration"));
    }

    #[test]
    fn suppressed_findings_move_to_the_suppressed_list() {
        let src =
            "fn f() {\n  x.unwrap() // nocstar-lint: allow(sim-unwrap): length checked on entry\n}";
        let r = lint("crates/x/src/a.rs", src);
        assert_eq!(r.findings.len(), 0, "{:?}", r.findings);
        assert_eq!(r.suppressed.len(), 1);
    }

    #[test]
    fn unjustified_suppression_is_an_error_finding() {
        let src = "fn f() {\n  x.unwrap() // nocstar-lint: allow(sim-unwrap)\n}";
        let r = lint("crates/x/src/a.rs", src);
        let rules: Vec<&str> = r.findings.iter().map(|f| f.rule.as_str()).collect();
        assert!(
            rules.contains(&"sim-unwrap"),
            "unjustified must not silence"
        );
        assert!(rules.contains(&"invalid-suppression"));
        assert_eq!(r.error_count(), 2);
    }
}
