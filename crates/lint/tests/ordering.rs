//! Finding-order stability: however files reach the linter (and in
//! whatever argument order), every emitter — human, JSON, SARIF — must
//! present findings sorted by (path, line, rule id), so diffs between CI
//! runs are semantic, never positional.

use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn fixture(dir: &str, name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(dir)
        .join(name)
}

/// One (path, line, rule) key per finding, in emitted order.
type Key = (String, u64, String);

#[test]
fn finding_order_is_pinned_across_all_emitters() {
    // Deliberately scrambled argument order: reverse-alphabetical, with
    // a multi-finding fixture in the middle.
    let args = [
        fixture("wall_clock", "bad.rs"),
        fixture("tainted_event_time", "bad.rs"),
        fixture("sim_unwrap", "bad.rs"),
        fixture("float_accumulation", "bad.rs"),
    ];
    let tmp = workspace_root().join("target/lint-test-ordering");
    let json_path = tmp.join("report.json");
    let sarif_path = tmp.join("report.sarif");
    let out = Command::new(env!("CARGO_BIN_EXE_nocstar-lint"))
        .arg("--root")
        .arg(workspace_root())
        .arg("--class")
        .arg("sim")
        .arg("--json-out")
        .arg(&json_path)
        .arg("--sarif-out")
        .arg(&sarif_path)
        .args(&args)
        .output()
        .expect("nocstar-lint binary runs");
    assert_eq!(out.status.code(), Some(1), "bad fixtures fail the gate");

    let json_keys = json_keys(&std::fs::read_to_string(&json_path).expect("json artifact"));
    assert!(
        json_keys.len() >= 6,
        "expected many findings: {json_keys:?}"
    );
    let mut sorted = json_keys.clone();
    sorted.sort();
    assert_eq!(
        json_keys, sorted,
        "JSON findings must be (path, line, rule)-sorted"
    );

    let human_keys = human_keys(&String::from_utf8_lossy(&out.stderr));
    assert_eq!(human_keys, json_keys, "human output must match JSON order");

    let sarif_keys = sarif_keys(&std::fs::read_to_string(&sarif_path).expect("sarif artifact"));
    assert_eq!(sarif_keys, json_keys, "SARIF results must match JSON order");
}

fn json_keys(text: &str) -> Vec<Key> {
    let doc = nocstar_json::Json::parse(text).expect("valid json");
    doc.get("findings")
        .and_then(|f| f.as_array())
        .expect("findings array")
        .iter()
        .map(|f| {
            (
                f.get("path").unwrap().as_str().unwrap().to_string(),
                f.get("line").unwrap().as_u64().unwrap(),
                f.get("rule").unwrap().as_str().unwrap().to_string(),
            )
        })
        .collect()
}

fn human_keys(text: &str) -> Vec<Key> {
    // Lines look like `error[rule]: path:line: message`.
    text.lines()
        .filter_map(|l| {
            let (sev_rule, rest) = l.split_once("]: ")?;
            let rule = sev_rule.split_once('[')?.1.to_string();
            if rule == "hint" {
                return None;
            }
            let mut parts = rest.splitn(3, ':');
            let path = parts.next()?.to_string();
            let line: u64 = parts.next()?.parse().ok()?;
            Some((path, line, rule))
        })
        .collect()
}

fn sarif_keys(text: &str) -> Vec<Key> {
    let doc = nocstar_json::Json::parse(text).expect("valid sarif");
    let runs = doc.get("runs").unwrap().as_array().unwrap();
    runs[0]
        .get("results")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|r| {
            let loc = &r.get("locations").unwrap().as_array().unwrap()[0];
            let phys = loc.get("physicalLocation").unwrap();
            let path = phys
                .get("artifactLocation")
                .unwrap()
                .get("uri")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string();
            let line = phys
                .get("region")
                .unwrap()
                .get("startLine")
                .unwrap()
                .as_u64()
                .unwrap();
            let rule = r.get("ruleId").unwrap().as_str().unwrap().to_string();
            (path, line, rule)
        })
        .collect()
}
