//! Fixture-based rule tests: every rule has a known-bad snippet that must
//! fire (and fail the CLI with exit code 1) and a known-good snippet that
//! must stay silent, plus suppression-grammar fixtures proving that a
//! justified `allow(...)` silences a finding while an unjustified one is
//! itself a build-failing error.

use nocstar_lint::policy::Policy;
use nocstar_lint::{lint_source, Report};
use std::path::{Path, PathBuf};
use std::process::Command;

/// (fixture directory, rule id) for every shipped rule.
const RULES: &[(&str, &str)] = &[
    ("unordered_iteration", "unordered-iteration"),
    ("wall_clock", "wall-clock"),
    ("entropy_rng", "entropy-rng"),
    ("sim_unwrap", "sim-unwrap"),
    ("event_time_regression", "event-time-regression"),
    ("shared_mut_parallel", "shared-mut-parallel"),
];

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn fixture(dir: &str, name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(dir)
        .join(name)
}

fn shipped_policy() -> Policy {
    Policy::load(&workspace_root().join("nocstar-lint.toml")).expect("shipped policy parses")
}

fn lint_fixture(dir: &str, name: &str) -> Report {
    let path = fixture(dir, name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    lint_source(&path, "sim", &text, &shipped_policy())
}

#[test]
fn every_bad_fixture_fires_its_rule() {
    for (dir, rule) in RULES {
        let report = lint_fixture(dir, "bad.rs");
        let hits: Vec<_> = report.findings.iter().filter(|f| f.rule == *rule).collect();
        assert!(
            !hits.is_empty(),
            "{dir}/bad.rs produced no `{rule}` finding: {:?}",
            report.findings
        );
        assert!(
            report.error_count() > 0,
            "{dir}/bad.rs findings must be error severity under the shipped sim policy"
        );
    }
}

#[test]
fn every_good_fixture_is_clean() {
    for (dir, rule) in RULES {
        let report = lint_fixture(dir, "good.rs");
        assert!(
            report.findings.is_empty(),
            "{dir}/good.rs must be clean of `{rule}` (and everything else): {:?}",
            report.findings
        );
    }
}

#[test]
fn entropy_rule_fires_inside_test_modules_too() {
    // Unlike the other rules, entropy-rng does not exempt #[cfg(test)]
    // regions: a nondeterministic test is a flaky test. The bad fixture
    // deliberately seeds entropy from inside a test module.
    let report = lint_fixture("entropy_rng", "bad.rs");
    let text = std::fs::read_to_string(fixture("entropy_rng", "bad.rs")).unwrap();
    let test_mod_line = text
        .lines()
        .position(|l| l.contains("rand::random") && text.contains("#[cfg(test)]"))
        .expect("fixture has an in-test entropy call") as u32;
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "entropy-rng" && f.line > test_mod_line),
        "expected an entropy-rng finding inside the #[cfg(test)] module: {:?}",
        report.findings
    );
}

#[test]
fn justified_suppression_silences_but_is_reported() {
    let report = lint_fixture("suppression", "justified.rs");
    assert!(
        report.findings.is_empty(),
        "a justified allow(...) must silence the finding: {:?}",
        report.findings
    );
    assert_eq!(
        report.suppressed.len(),
        1,
        "the waived finding must still appear in the suppressed list for CI artifacts"
    );
    assert_eq!(report.suppressed[0].rule, "sim-unwrap");
}

#[test]
fn suppression_without_justification_is_rejected() {
    let report = lint_fixture("suppression", "missing_justification.rs");
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule.as_str()).collect();
    assert!(
        rules.contains(&"sim-unwrap"),
        "an unjustified allow(...) must not silence the original finding: {rules:?}"
    );
    assert!(
        rules.contains(&"invalid-suppression"),
        "the malformed suppression must itself be an error: {rules:?}"
    );
    assert!(report.error_count() >= 2);
}

/// Drives the real binary the way CI does, against an explicit file list
/// under the sim class, and returns its exit code.
fn cli_exit_code(file: &Path) -> i32 {
    let out = Command::new(env!("CARGO_BIN_EXE_nocstar-lint"))
        .arg("--root")
        .arg(workspace_root())
        .arg("--class")
        .arg("sim")
        .arg("--quiet")
        .arg(file)
        .output()
        .expect("nocstar-lint binary runs");
    out.status.code().expect("binary exits normally")
}

#[test]
fn cli_exits_nonzero_on_each_bad_fixture() {
    for (dir, rule) in RULES {
        assert_eq!(
            cli_exit_code(&fixture(dir, "bad.rs")),
            1,
            "`{rule}` bad fixture must fail the CLI gate"
        );
    }
}

#[test]
fn cli_exits_zero_on_each_good_fixture() {
    for (dir, rule) in RULES {
        assert_eq!(
            cli_exit_code(&fixture(dir, "good.rs")),
            0,
            "`{rule}` good fixture must pass the CLI gate"
        );
    }
}

#[test]
fn cli_writes_json_and_sarif_artifacts() {
    let tmp = workspace_root().join("target/lint-test-artifacts");
    let json_path = tmp.join("report.json");
    let sarif_path = tmp.join("report.sarif");
    let out = Command::new(env!("CARGO_BIN_EXE_nocstar-lint"))
        .arg("--root")
        .arg(workspace_root())
        .arg("--class")
        .arg("sim")
        .arg("--quiet")
        .arg("--json-out")
        .arg(&json_path)
        .arg("--sarif-out")
        .arg(&sarif_path)
        .arg(fixture("sim_unwrap", "bad.rs"))
        .output()
        .expect("nocstar-lint binary runs");
    assert_eq!(out.status.code(), Some(1));
    let json = std::fs::read_to_string(&json_path).expect("JSON artifact written");
    assert!(
        json.contains("sim-unwrap"),
        "JSON artifact names the firing rule: {json}"
    );
    let sarif = std::fs::read_to_string(&sarif_path).expect("SARIF artifact written");
    assert!(
        sarif.contains("\"version\": \"2.1.0\"") || sarif.contains("\"version\":\"2.1.0\""),
        "SARIF artifact declares schema version: {sarif}"
    );
    assert!(sarif.contains("sim-unwrap"));
}
