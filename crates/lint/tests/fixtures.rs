//! Fixture-based rule tests: every rule has a known-bad snippet that must
//! fire (and fail the CLI with exit code 1) and a known-good snippet that
//! must stay silent, plus suppression-grammar fixtures proving that a
//! justified `allow(...)` silences a finding while an unjustified one is
//! itself a build-failing error.

use nocstar_lint::policy::Policy;
use nocstar_lint::{lint_source, Report};
use std::path::{Path, PathBuf};
use std::process::Command;

/// (fixture directory, rule id, bad fixture fails the build) for every
/// shipped rule and every resolution-path variant. `panic-indexing` is
/// warn severity under the shipped sim policy, so its bad fixture must
/// fire without failing the CLI gate.
const RULES: &[(&str, &str, bool)] = &[
    ("unordered_iteration", "unordered-iteration", true),
    ("unordered_resolved", "unordered-iteration", true),
    ("wall_clock", "wall-clock", true),
    ("entropy_rng", "entropy-rng", true),
    ("sim_unwrap", "sim-unwrap", true),
    ("event_time_regression", "event-time-regression", true),
    ("shared_mut_parallel", "shared-mut-parallel", true),
    ("shared_mut_resolved", "shared-mut-parallel", true),
    ("float_accumulation", "float-accumulation", true),
    ("panic_indexing", "panic-indexing", false),
    ("tainted_event_time", "tainted-event-time", true),
];

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn fixture(dir: &str, name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(dir)
        .join(name)
}

fn shipped_policy() -> Policy {
    Policy::load(&workspace_root().join("nocstar-lint.toml")).expect("shipped policy parses")
}

fn lint_fixture(dir: &str, name: &str) -> Report {
    let path = fixture(dir, name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    lint_source(&path, "sim", &text, &shipped_policy())
}

#[test]
fn every_bad_fixture_fires_its_rule() {
    for (dir, rule, fails_build) in RULES {
        let report = lint_fixture(dir, "bad.rs");
        let hits: Vec<_> = report.findings.iter().filter(|f| f.rule == *rule).collect();
        assert!(
            !hits.is_empty(),
            "{dir}/bad.rs produced no `{rule}` finding: {:?}",
            report.findings
        );
        if *fails_build {
            assert!(
                report.error_count() > 0,
                "{dir}/bad.rs findings must be error severity under the shipped sim policy"
            );
        } else {
            assert_eq!(
                report.error_count(),
                0,
                "{dir}/bad.rs must fire `{rule}` as a warning only: {:?}",
                report.findings
            );
        }
    }
}

#[test]
fn every_good_fixture_is_clean() {
    for (dir, rule, _) in RULES {
        let report = lint_fixture(dir, "good.rs");
        assert!(
            report.findings.is_empty(),
            "{dir}/good.rs must be clean of `{rule}` (and everything else, warnings \
             included): {:?}",
            report.findings
        );
    }
}

#[test]
fn entropy_rule_fires_inside_test_modules_too() {
    // Unlike the other rules, entropy-rng does not exempt #[cfg(test)]
    // regions: a nondeterministic test is a flaky test. The bad fixture
    // deliberately seeds entropy from inside a test module.
    let report = lint_fixture("entropy_rng", "bad.rs");
    let text = std::fs::read_to_string(fixture("entropy_rng", "bad.rs")).unwrap();
    let test_mod_line = text
        .lines()
        .position(|l| l.contains("rand::random") && text.contains("#[cfg(test)]"))
        .expect("fixture has an in-test entropy call") as u32;
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "entropy-rng" && f.line > test_mod_line),
        "expected an entropy-rng finding inside the #[cfg(test)] module: {:?}",
        report.findings
    );
}

#[test]
fn justified_suppression_silences_but_is_reported() {
    let report = lint_fixture("suppression", "justified.rs");
    assert!(
        report.findings.is_empty(),
        "a justified allow(...) must silence the finding: {:?}",
        report.findings
    );
    assert_eq!(
        report.suppressed.len(),
        1,
        "the waived finding must still appear in the suppressed list for CI artifacts"
    );
    assert_eq!(report.suppressed[0].rule, "sim-unwrap");
}

#[test]
fn suppression_without_justification_is_rejected() {
    let report = lint_fixture("suppression", "missing_justification.rs");
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule.as_str()).collect();
    assert!(
        rules.contains(&"sim-unwrap"),
        "an unjustified allow(...) must not silence the original finding: {rules:?}"
    );
    assert!(
        rules.contains(&"invalid-suppression"),
        "the malformed suppression must itself be an error: {rules:?}"
    );
    assert!(report.error_count() >= 2);
}

#[test]
fn stale_suppression_is_an_error() {
    let report = lint_fixture("suppression", "stale.rs");
    let stale: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "invalid-suppression")
        .collect();
    assert_eq!(
        stale.len(),
        1,
        "a suppression whose rule ran but matched nothing must be flagged stale: {:?}",
        report.findings
    );
    assert!(
        stale[0].message.contains("stale"),
        "the finding must say why: {}",
        stale[0].message
    );
    assert!(report.suppressed.is_empty(), "nothing was actually waived");
}

#[test]
fn suppression_naming_unknown_rule_is_an_error() {
    let report = lint_fixture("suppression", "unknown_rule.rs");
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule.as_str()).collect();
    assert!(
        rules.contains(&"invalid-suppression"),
        "a typo'd rule id must fail the build, not silently no-op: {rules:?}"
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.message.contains("unknown rule `no-such-rule`")),
        "the finding must name the bad id: {:?}",
        report.findings
    );
}

/// Drives the real binary the way CI does, against an explicit file list
/// under the sim class, and returns its exit code.
fn cli_exit_code(file: &Path) -> i32 {
    let out = Command::new(env!("CARGO_BIN_EXE_nocstar-lint"))
        .arg("--root")
        .arg(workspace_root())
        .arg("--class")
        .arg("sim")
        .arg("--quiet")
        .arg(file)
        .output()
        .expect("nocstar-lint binary runs");
    out.status.code().expect("binary exits normally")
}

#[test]
fn cli_exit_codes_track_fixture_severity() {
    for (dir, rule, fails_build) in RULES {
        let expected = i32::from(*fails_build);
        assert_eq!(
            cli_exit_code(&fixture(dir, "bad.rs")),
            expected,
            "`{rule}` bad fixture ({dir}) must exit {expected} under the shipped policy"
        );
        assert_eq!(
            cli_exit_code(&fixture(dir, "good.rs")),
            0,
            "`{rule}` good fixture ({dir}) must pass the CLI gate"
        );
    }
}

#[test]
fn cli_writes_json_and_sarif_artifacts() {
    let tmp = workspace_root().join("target/lint-test-artifacts");
    let json_path = tmp.join("report.json");
    let sarif_path = tmp.join("report.sarif");
    let out = Command::new(env!("CARGO_BIN_EXE_nocstar-lint"))
        .arg("--root")
        .arg(workspace_root())
        .arg("--class")
        .arg("sim")
        .arg("--quiet")
        .arg("--json-out")
        .arg(&json_path)
        .arg("--sarif-out")
        .arg(&sarif_path)
        .arg(fixture("sim_unwrap", "bad.rs"))
        .output()
        .expect("nocstar-lint binary runs");
    assert_eq!(out.status.code(), Some(1));
    let json = std::fs::read_to_string(&json_path).expect("JSON artifact written");
    assert!(
        json.contains("sim-unwrap"),
        "JSON artifact names the firing rule: {json}"
    );
    let sarif = std::fs::read_to_string(&sarif_path).expect("SARIF artifact written");
    assert!(
        sarif.contains("\"version\": \"2.1.0\"") || sarif.contains("\"version\":\"2.1.0\""),
        "SARIF artifact declares schema version: {sarif}"
    );
    assert!(sarif.contains("sim-unwrap"));
}
