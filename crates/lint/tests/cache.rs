//! Incremental-cache behavior, end to end over a throwaway
//! mini-workspace: a cold run analyzes everything, a warm run analyzes
//! nothing (while reporting identical findings), touching one file
//! re-lints exactly that file, and changing the policy text invalidates
//! the whole cache.

use nocstar_lint::cache::Cache;
use nocstar_lint::policy::Policy;
use nocstar_lint::{lint_workspace_cached, Finding};
use std::path::{Path, PathBuf};

const POLICY: &str = r#"
[crates]
"crates/a" = "sim"
"crates/b" = "sim"

[rules.sim]
unordered-iteration = "error"
sim-unwrap = "error"
"#;

const FILE_A: &str =
    "use std::collections::HashMap;\n\npub fn f() -> HashMap<u64, u64> {\n    HashMap::new()\n}\n";
const FILE_B: &str = "pub fn g(x: Option<u64>) -> u64 {\n    x.unwrap_or(0)\n}\n";

/// Builds the mini-workspace under `target/` and returns its root.
fn setup(name: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/lint-test-cache")
        .join(name);
    let _ = std::fs::remove_dir_all(&root);
    for (rel, text) in [
        ("crates/a/src/lib.rs", FILE_A),
        ("crates/b/src/lib.rs", FILE_B),
    ] {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, text).unwrap();
    }
    root
}

fn keys(findings: &[Finding]) -> Vec<(String, u32, String)> {
    findings
        .iter()
        .map(|f| (f.path.display().to_string(), f.line, f.rule.clone()))
        .collect()
}

#[test]
fn warm_cache_serves_identical_findings_without_reanalysis() {
    let root = setup("warm");
    let cache_path = root.join("target/lint/cache.json");
    let policy = Policy::parse(POLICY).unwrap();

    let mut cache = Cache::load(&cache_path, policy.source_hash);
    let cold = lint_workspace_cached(&root, &policy, Some(&mut cache)).unwrap();
    assert_eq!(cold.files_scanned, 2);
    assert_eq!(cold.files_reanalyzed, 2, "cold run analyzes everything");
    let expected: Vec<(String, u32, String)> = [1, 3, 4]
        .iter()
        .map(|&l| {
            (
                "crates/a/src/lib.rs".into(),
                l,
                "unordered-iteration".into(),
            )
        })
        .collect();
    assert_eq!(
        keys(&cold.findings),
        expected,
        "every HashMap mention in the fixture is a deliberate finding"
    );
    cache.save(&cache_path).unwrap();

    let mut cache = Cache::load(&cache_path, policy.source_hash);
    let warm = lint_workspace_cached(&root, &policy, Some(&mut cache)).unwrap();
    assert_eq!(warm.files_scanned, 2);
    assert_eq!(
        warm.files_reanalyzed, 0,
        "unchanged tree must be fully cached"
    );
    assert_eq!(
        keys(&warm.findings),
        keys(&cold.findings),
        "cached findings must be byte-equivalent to fresh ones"
    );
}

#[test]
fn content_touch_relints_exactly_the_changed_file() {
    let root = setup("touch");
    let cache_path = root.join("target/lint/cache.json");
    let policy = Policy::parse(POLICY).unwrap();

    let mut cache = Cache::load(&cache_path, policy.source_hash);
    lint_workspace_cached(&root, &policy, Some(&mut cache)).unwrap();
    cache.save(&cache_path).unwrap();

    // Append a comment: semantically inert, but the content hash moves.
    let a = root.join("crates/a/src/lib.rs");
    std::fs::write(&a, format!("{FILE_A}// touched\n")).unwrap();

    let mut cache = Cache::load(&cache_path, policy.source_hash);
    let report = lint_workspace_cached(&root, &policy, Some(&mut cache)).unwrap();
    assert_eq!(report.files_scanned, 2);
    assert_eq!(
        report.files_reanalyzed, 1,
        "only the touched file may be re-analyzed"
    );
    cache.save(&cache_path).unwrap();

    // And the run after that is fully warm again.
    let mut cache = Cache::load(&cache_path, policy.source_hash);
    let warm = lint_workspace_cached(&root, &policy, Some(&mut cache)).unwrap();
    assert_eq!(warm.files_reanalyzed, 0);
}

#[test]
fn policy_change_invalidates_the_whole_cache() {
    let root = setup("policy");
    let cache_path = root.join("target/lint/cache.json");
    let policy = Policy::parse(POLICY).unwrap();

    let mut cache = Cache::load(&cache_path, policy.source_hash);
    lint_workspace_cached(&root, &policy, Some(&mut cache)).unwrap();
    cache.save(&cache_path).unwrap();

    // Even a comment-only edit to the policy text must flush the cache:
    // findings were computed under the old policy bytes.
    let changed = Policy::parse(&format!("{POLICY}\n# tightened tomorrow\n")).unwrap();
    assert_ne!(changed.source_hash, policy.source_hash);
    let mut cache = Cache::load(&cache_path, changed.source_hash);
    let report = lint_workspace_cached(&root, &changed, Some(&mut cache)).unwrap();
    assert_eq!(report.files_scanned, 2);
    assert_eq!(
        report.files_reanalyzed, 2,
        "a policy-hash mismatch must re-lint every file"
    );
}
