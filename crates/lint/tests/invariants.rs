//! Policy-coverage invariants: the shipped `nocstar-lint.toml` must
//! classify every workspace crate, so a newly added crate cannot
//! silently escape the deterministic-crate class, and the repo tree
//! itself must lint clean under that policy.

use nocstar_lint::policy::{Policy, Severity};
use nocstar_lint::{lint_workspace, rules};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn shipped_policy() -> Policy {
    Policy::load(&workspace_root().join("nocstar-lint.toml")).expect("shipped policy parses")
}

/// Crates whose code can affect a SimReport; these must stay in the
/// `sim` class no matter how the policy file is edited.
const SIM_CRATES: &[&str] = &[
    "crates/core",
    "crates/faults",
    "crates/mem",
    "crates/noc",
    "crates/stats",
    "crates/tlb",
    "crates/workloads",
];

#[test]
fn every_workspace_crate_is_classified() {
    let root = workspace_root();
    let policy = shipped_policy();
    let crates_dir = root.join("crates");
    let mut missing = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(&crates_dir)
        .expect("crates/ listable")
        .map(|e| e.expect("entry readable").path())
        .collect();
    entries.sort();
    for path in entries {
        if !path.join("Cargo.toml").is_file() {
            continue;
        }
        let rel = path
            .strip_prefix(&root)
            .expect("under root")
            .to_string_lossy()
            .replace('\\', "/");
        if !policy.crates.contains_key(rel.as_str()) {
            missing.push(rel);
        }
    }
    // The facade crate at the workspace root must be classified too.
    assert!(
        policy.crates.contains_key("."),
        "the root facade crate must be classified (add `\".\"` to [crates])"
    );
    assert!(
        missing.is_empty(),
        "crates missing from nocstar-lint.toml [crates] (classify each as \
         `sim` or `tools` so it cannot escape the determinism gate): {missing:?}"
    );
}

#[test]
fn classified_dirs_all_exist() {
    // The reverse direction: a stale policy entry for a deleted crate
    // would make lint_workspace fail with a confusing I/O error.
    let root = workspace_root();
    for dir in shipped_policy().crates.keys() {
        assert!(
            root.join(dir).join("src").is_dir(),
            "policy classifies `{dir}` but it has no src/ directory"
        );
    }
}

#[test]
fn sim_crates_cannot_be_declassified() {
    let policy = shipped_policy();
    for dir in SIM_CRATES {
        assert_eq!(
            policy.crates.get(*dir).map(String::as_str),
            Some("sim"),
            "`{dir}` holds simulation state and must stay in the sim class"
        );
    }
}

/// The pinned sim-class severity floor. Every rule is `error` except
/// `panic-indexing`, which ships at `warn` until the tree's audited
/// fixed-geometry indexing sites are burned down (tracked in ROADMAP);
/// it must never drop to `allow`.
const SIM_SEVERITIES: &[(&str, Severity)] = &[
    ("unordered-iteration", Severity::Error),
    ("wall-clock", Severity::Error),
    ("entropy-rng", Severity::Error),
    ("sim-unwrap", Severity::Error),
    ("event-time-regression", Severity::Error),
    ("shared-mut-parallel", Severity::Error),
    ("float-accumulation", Severity::Error),
    ("panic-indexing", Severity::Warn),
    ("tainted-event-time", Severity::Error),
];

#[test]
fn sim_class_severities_are_pinned() {
    let policy = shipped_policy();
    for (rule, want) in SIM_SEVERITIES {
        assert_eq!(
            policy.severity("sim", rule),
            *want,
            "rule `{rule}` must be {} severity for sim crates",
            want.name()
        );
    }
    // The table above must cover the registry exactly, so a new rule
    // cannot ship without a pinned sim severity.
    let pinned: Vec<&str> = SIM_SEVERITIES.iter().map(|(r, _)| *r).collect();
    for rule in rules::registry() {
        assert!(
            pinned.contains(&rule.id()),
            "rule `{}` has no pinned sim severity — add it to SIM_SEVERITIES",
            rule.id()
        );
    }
    assert_eq!(
        pinned.len(),
        rules::registry().len(),
        "stale SIM_SEVERITIES entry"
    );
}

#[test]
fn every_rule_is_configured_in_every_class() {
    // No rule may ship unclassified: both [rules.sim] and [rules.tools]
    // must take an explicit position (even if that position is `allow`)
    // on every registry rule, so adding a rule forces a policy decision.
    let policy = shipped_policy();
    for class in ["sim", "tools"] {
        let table = policy
            .rules
            .get(class)
            .unwrap_or_else(|| panic!("policy has no [rules.{class}] table"));
        for rule in rules::registry() {
            assert!(
                table.contains_key(rule.id()),
                "[rules.{class}] takes no position on `{}` — add an explicit entry",
                rule.id()
            );
        }
    }
}

#[test]
fn every_class_in_use_has_a_rules_table() {
    let policy = shipped_policy();
    for (dir, class) in &policy.crates {
        assert!(
            policy.rules.contains_key(class),
            "crate `{dir}` uses class `{class}` but the policy has no [rules.{class}] table"
        );
    }
}

#[test]
fn repo_tree_lints_clean() {
    let report = lint_workspace(&workspace_root(), &shipped_policy()).expect("workspace lints");
    let errors: Vec<String> = report
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .map(|f| format!("{}:{} {} — {}", f.path.display(), f.line, f.rule, f.message))
        .collect();
    assert!(
        errors.is_empty(),
        "the repo must lint clean (fix or justify each):\n{}",
        errors.join("\n")
    );
    assert!(
        report.files_scanned > 100,
        "suspiciously few files scanned ({}) — policy coverage broke?",
        report.files_scanned
    );
}
