//! Fixture: integer accumulation (exact, order-insensitive) with a
//! single float conversion at the edge stays silent.

pub fn mean_latency(samples: &[u64]) -> f64 {
    let total: u64 = samples.iter().sum();
    total as f64 / samples.len() as f64
}

pub fn count_hits(rows: &[u64]) -> u64 {
    let mut acc: u64 = 0;
    for r in rows {
        acc += *r;
    }
    acc
}

pub fn folded(xs: &[u64]) -> u64 {
    xs.iter().fold(0u64, |acc, x| acc + x)
}
