//! Fixture: order-sensitive float reductions, one per detection path —
//! a float-marked chain, a `::<f64>` turbofish, a float fold seed, a
//! float-aliased `let`, and a hand-rolled loop accumulator.

type Score = f64;

pub fn mean_latency(samples: &[u64]) -> f64 {
    let total = samples.iter().map(|&s| s as f64 / 3.0).sum();
    total
}

pub fn norm(weights: &[f64]) -> f64 {
    weights.iter().sum::<f64>()
}

pub fn folded(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |acc, x| acc + x)
}

pub fn aliased(parts: &[Score]) -> Score {
    let total: Score = parts.iter().copied().sum();
    total
}

pub fn looped(xs: &[f64]) -> f64 {
    let mut acc: f64 = 0.0;
    for x in xs {
        acc += *x;
    }
    acc
}
