//! Fixture: simulated time threads through as cycles; the only `Instant`
//! mention is in a comment (not a finding).

pub fn walk_latency_cycles(started_at: u64, now: u64) -> u64 {
    // Host Instant::now() timing belongs in crates/bench, not here.
    now.saturating_sub(started_at)
}
