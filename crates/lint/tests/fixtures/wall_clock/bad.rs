//! Fixture: host-clock reads in sim logic.

use std::time::Instant;

pub fn walk_latency_cycles() -> u64 {
    let t0 = Instant::now();
    let spent = t0.elapsed().as_nanos() as u64;
    let since_epoch = std::time::SystemTime::now();
    let _ = since_epoch;
    spent
}
