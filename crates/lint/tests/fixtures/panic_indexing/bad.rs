//! Fixture: bracket indexing on sim paths — a slice index, a field-chain
//! index, and an index off a call result all panic on a bad bound.

pub struct Mesh {
    links: Vec<u64>,
}

pub fn way_stamp(stamps: &[u64], way: usize) -> u64 {
    stamps[way]
}

pub fn hop(m: &Mesh, x: usize, y: usize, width: usize) -> u64 {
    m.links[y * width + x]
}

pub fn tail_byte(bytes: &[u8]) -> u8 {
    bytes[bytes.len() - 1]
}
