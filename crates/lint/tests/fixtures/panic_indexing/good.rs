//! Fixture: checked access, array types, attributes, and full-range
//! borrows all involve `[` without a panicking index and stay silent.

#[derive(Clone)]
pub struct Header {
    pub magic: [u8; 4],
}

pub fn way_stamp(stamps: &[u64], way: usize) -> Option<u64> {
    stamps.get(way).copied()
}

pub fn whole(stamps: &[u64]) -> &[u64] {
    &stamps[..]
}

pub fn first_or_zero(stamps: &[u64]) -> u64 {
    stamps.first().copied().unwrap_or(0)
}
