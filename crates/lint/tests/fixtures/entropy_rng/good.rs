//! Fixture: all randomness derives from the run's explicit seed.

use rand::rngs::SmallRng;
use rand::SeedableRng;

pub fn rng_for_core(master_seed: u64, core: u64) -> SmallRng {
    SmallRng::seed_from_u64(master_seed ^ (core.wrapping_mul(0x9e3779b97f4a7c15)))
}
