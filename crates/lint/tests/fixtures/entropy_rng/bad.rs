//! Fixture: entropy-seeded randomness. The test-module hit is ALSO a
//! finding: entropy-rng does not exempt test code (flaky tests are
//! still flaky).

pub fn shuffle_seed() -> u64 {
    let mut rng = rand::thread_rng();
    let extra: u64 = rand::random();
    let from_os = SmallRng::from_entropy();
    let _ = (&mut rng, from_os);
    extra
}

#[cfg(test)]
mod tests {
    #[test]
    fn nondeterministic_test() {
        let noise: u64 = rand::random();
        assert!(noise >= 0);
    }
}
