//! Fixture: timestamps are read, compared, and constructed — never
//! mutated in place.

pub struct Scheduled {
    pub at: u64,
    pub payload: u64,
}

pub fn is_due(event: &Scheduled, now: u64) -> bool {
    event.at <= now && event.at == event.at && event.at != now + 1
}

pub fn reschedule(event: &Scheduled, now: u64) -> Scheduled {
    Scheduled {
        at: now + 1,
        payload: event.payload,
    }
}
