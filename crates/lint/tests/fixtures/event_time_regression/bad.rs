//! Fixture: scheduled event timestamps rewritten in place.

pub struct Scheduled {
    pub at: u64,
    pub payload: u64,
}

pub fn rewind(event: &mut Scheduled) {
    event.at = 0;
}

pub fn nudge(event: &mut Scheduled, by: u64) {
    event.at += by;
    event.at -= 1;
}
