//! Fixture: single-thread interior mutability smuggled behind an import
//! rename and a `type` alias; the field type resolves to RefCell.

use std::cell::RefCell as Slot;

type Shared = Slot<u64>;

pub struct Counter {
    inner: Shared,
}

pub fn bump(c: &Counter) {
    *c.inner.borrow_mut() += 1;
}
