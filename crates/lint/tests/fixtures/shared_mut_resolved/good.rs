//! Fixture: the same rename/alias shapes over a Sync container (Mutex)
//! are deliberate cross-thread state and must stay silent.

use std::sync::Mutex as Slot;

type Shared = Slot<u64>;

pub struct Counter {
    inner: Shared,
}

pub fn fresh() -> Counter {
    Counter {
        inner: Shared::new(0),
    }
}
