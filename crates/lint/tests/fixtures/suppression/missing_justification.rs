//! Fixture: suppressions without a justification are rejected — the
//! original finding still fires AND the malformed comment is its own
//! error.

pub fn victim_way(stamps: &[u64]) -> usize {
    stamps
        .iter()
        .enumerate()
        .min_by_key(|(_, s)| **s)
        // nocstar-lint: allow(sim-unwrap)
        .expect("nonempty")
        .0
}
