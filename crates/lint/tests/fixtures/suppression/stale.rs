//! Fixture: a well-formed suppression whose rule runs but silences
//! nothing is stale — the unwrap it excused was fixed, so the comment
//! must be deleted (and failing the build is how we find out).

pub fn checked(stamps: &[u64]) -> u64 {
    // nocstar-lint: allow(sim-unwrap): leftover from a removed unwrap
    stamps.first().copied().unwrap_or(0)
}
