//! Fixture: a suppression naming a rule id that does not exist silences
//! nothing and must itself fail the build — typos don't get a pass.

pub fn f(x: Option<u64>) -> u64 {
    // nocstar-lint: allow(no-such-rule): typo'd rule id
    x.unwrap_or(0)
}
