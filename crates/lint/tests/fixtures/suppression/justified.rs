//! Fixture: a justified suppression silences its finding (which then
//! shows up in the report's `suppressed` list, not `findings`).

pub fn victim_way(stamps: &[u64]) -> usize {
    debug_assert!(!stamps.is_empty());
    stamps
        .iter()
        .enumerate()
        .min_by_key(|(_, s)| **s)
        // nocstar-lint: allow(sim-unwrap): stamps is non-empty, a caller invariant
        .expect("nonempty")
        .0
}
