//! Fixture: the same rename/alias/field shapes over an *ordered* map
//! resolve to BTreeMap and must stay silent — resolution must not flag
//! the spelling, only what it denotes.

use std::collections::BTreeMap as Map;

type HomeCache = Map<u64, usize>;

pub struct SliceDirectory {
    homes: HomeCache,
}

pub fn lookup(dir: &SliceDirectory, vpn: u64) -> Option<usize> {
    dir.homes.get(&vpn).copied()
}

pub fn fresh() -> HomeCache {
    HomeCache::new()
}
