//! Fixture: hash-ordered collections reached through an import rename, a
//! `type` alias, and a struct field type — invisible to a token-only
//! rule, caught by scope resolution.

use std::collections::HashMap as Map;

type HomeCache = Map<u64, usize>;

pub struct SliceDirectory {
    homes: HomeCache,
}

pub fn lookup(dir: &SliceDirectory, vpn: u64) -> Option<usize> {
    dir.homes.get(&vpn).copied()
}

pub fn fresh() -> HomeCache {
    HomeCache::new()
}
