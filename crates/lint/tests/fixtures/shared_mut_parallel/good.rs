//! Fixture: mutation goes through `&mut self`, and state that genuinely
//! crosses domain workers sits behind Sync containers. A RefCell or Cell
//! mentioned in a comment is not a finding.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

pub struct SliceState {
    hits: u64,
    // A Cell<u64> here would hide this mutation from the parallel driver.
    shared_epoch: Arc<AtomicU64>,
    tables: Arc<RwLock<Vec<u64>>>,
}

impl SliceState {
    pub fn record_hit(&mut self) {
        self.hits += 1;
        self.shared_epoch.store(self.hits, Ordering::Release);
    }

    pub fn mapped_pages(&self) -> usize {
        match self.tables.read() {
            Ok(t) => t.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }
}
