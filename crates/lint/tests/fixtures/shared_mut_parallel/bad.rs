//! Fixture: single-thread interior mutability in sim state.

use std::cell::{Cell, RefCell};

static mut GLOBAL_CYCLE: u64 = 0;

pub struct SliceState {
    hits: Cell<u64>,
    inflight: RefCell<Vec<u64>>,
}

impl SliceState {
    pub fn record_hit(&self) {
        self.hits.set(self.hits.get() + 1);
        self.inflight.borrow_mut().push(self.hits.get());
    }
}
