//! Fixture: nondeterminism reaching event-time sinks through dataflow —
//! a wall-clock read laundered through a `let` chain into `.at`, a
//! hash-iteration binding stamping `at:` in a struct literal, and
//! entropy folded into a SimReport.

use std::collections::HashMap;
use std::time::Instant;

pub struct Ev {
    pub at: u64,
}

pub struct SimReport {
    pub walks: u64,
}

pub fn stamp(ev: &mut Ev) {
    let t0 = Instant::now();
    let dt = t0.elapsed().as_nanos() as u64;
    ev.at = dt;
}

pub struct Sched {
    pending: HashMap<u64, u64>,
}

impl Sched {
    pub fn emit(&self, out: &mut Vec<Ev>) {
        for vpn in self.pending.keys() {
            out.push(Ev { at: *vpn });
        }
    }
}

pub fn summarize() -> SimReport {
    let jitter = rand::random::<u64>();
    SimReport { walks: jitter }
}
