//! Fixture: event times derived from simulated time and ordered
//! iteration are deterministic and stay silent — same sink shapes as the
//! bad fixture, clean sources.

use std::collections::BTreeMap;

pub struct Ev {
    pub at: u64,
}

pub struct SimReport {
    pub walks: u64,
}

pub fn schedule(now: u64, delay: u64) -> Ev {
    let when = now + delay;
    Ev { at: when }
}

pub struct Sched {
    pending: BTreeMap<u64, u64>,
}

impl Sched {
    pub fn emit(&self, out: &mut Vec<Ev>) {
        for vpn in self.pending.keys() {
            out.push(Ev { at: *vpn });
        }
    }
}

pub fn summarize(walks: u64) -> SimReport {
    SimReport { walks }
}
