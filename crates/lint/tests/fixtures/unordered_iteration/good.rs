//! Fixture: ordered collections (and test-only hash maps) are clean.

use std::collections::{BTreeMap, BTreeSet};

pub struct SliceDirectory {
    homes: BTreeMap<u64, usize>,
}

pub fn drain_ready(ready: &BTreeSet<u64>) -> Vec<u64> {
    ready.iter().copied().collect()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap; // exempt: test-only scratch state

    #[test]
    fn scratch() {
        let mut m = HashMap::new();
        m.insert(1u64, 2u64);
        assert_eq!(m.len(), 1);
    }
}
