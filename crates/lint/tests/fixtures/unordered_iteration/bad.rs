//! Fixture: hash-ordered collections in sim code. Every mention below is
//! a finding; the string/comment mentions must NOT be.

use std::collections::{HashMap, HashSet};

pub struct SliceDirectory {
    homes: HashMap<u64, usize>,
}

pub fn drain_ready(ready: &HashSet<u64>) -> Vec<u64> {
    // Iterating a hash set: order varies run to run.
    ready.iter().copied().collect()
}

pub fn count(dir: &SliceDirectory) -> usize {
    let _not_a_finding = "HashMap mentioned in a string";
    dir.homes.len()
}
