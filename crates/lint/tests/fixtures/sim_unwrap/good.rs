//! Fixture: fallible extraction degrades structurally; test code may
//! panic; `unwrap_or`-family and custom `self.expect` methods are not
//! findings.

pub struct Parser {
    pos: usize,
}

impl Parser {
    fn expect(&mut self, _byte: u8) -> Result<(), String> {
        self.pos += 1;
        Ok(())
    }

    pub fn parse(&mut self) -> Result<(), String> {
        // A custom method named `expect` with a `self` receiver is never
        // std's panicking extractor.
        self.expect(b'{')?;
        Ok(())
    }
}

pub fn lookup(map: &std::collections::BTreeMap<u64, u64>, key: u64) -> u64 {
    map.get(&key).copied().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u64> = Some(3);
        assert_eq!(v.unwrap(), 3);
        let r: Result<u64, ()> = Ok(4);
        assert_eq!(r.expect("test invariant"), 4);
    }
}
