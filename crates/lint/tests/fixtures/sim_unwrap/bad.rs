//! Fixture: panicking extraction in sim code.

pub fn lookup(map: &std::collections::BTreeMap<u64, u64>, key: u64) -> u64 {
    let hit = map.get(&key).unwrap();
    let doubled = map.get(&(key * 2)).expect("scheduled earlier");
    hit + doubled
}
