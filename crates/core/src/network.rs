//! The interconnect instance a simulated system drives.
//!
//! Wraps the network models behind one enum (plus `None` for the
//! private and zero-latency-ideal organizations) so the simulation loop is
//! organization-agnostic.

use nocstar_faults::{
    DiagSnapshot, FaultPlan, FaultStats, RecoveryPolicy, RecoveryStats, SimError,
};
use nocstar_noc::circuit::{AcquireMode, CircuitFabric};
use nocstar_noc::hier::HierNoc;
use nocstar_noc::mesh::MeshNoc;
use nocstar_noc::message::{Delivery, Message, MsgKind};
use nocstar_noc::smart::SmartNoc;
use nocstar_noc::{Interconnect, NocStats};
use nocstar_types::time::Cycle;
use nocstar_types::MeshShape;

/// The network under an L2 TLB organization.
// One instance exists per simulation, so the variant size skew (HierNoc
// aggregates per-cluster fabrics) costs nothing worth a box's
// indirection on the per-cycle advance path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum NetworkModel {
    /// No network (private TLBs, or the zero-latency ideal).
    None,
    /// Contention-free multi-hop mesh (distributed / monolithic baselines).
    Mesh(MeshNoc),
    /// SMART bypass mesh (monolithic-SMART of Fig 15).
    Smart(SmartNoc),
    /// The NOCSTAR circuit-switched fabric.
    Circuit(CircuitFabric),
    /// The two-level hierarchical fabric (`hier` organizations).
    Hier(HierNoc),
}

impl NetworkModel {
    /// Builds the NOCSTAR fabric (optionally the contention-free ideal).
    pub fn nocstar(mesh: MeshShape, hpc_max: usize, acquire: AcquireMode, ideal: bool) -> Self {
        if ideal {
            NetworkModel::Circuit(CircuitFabric::ideal(mesh, hpc_max))
        } else {
            NetworkModel::Circuit(CircuitFabric::new(mesh, hpc_max, acquire))
        }
    }

    /// True when requests reserve a round-trip path (NOCSTAR round-trip
    /// acquire mode): responses must use
    /// [`respond`](Self::respond) instead of `submit`.
    pub fn is_round_trip(&self) -> bool {
        matches!(
            self,
            NetworkModel::Circuit(f) if f.mode() == AcquireMode::RoundTrip
        )
    }

    /// Submits a message (no-op immediate delivery is impossible here:
    /// callers must not submit through `None`).
    ///
    /// # Panics
    ///
    /// Panics if called on [`NetworkModel::None`].
    pub fn submit(&mut self, now: Cycle, msg: Message) {
        match self {
            NetworkModel::None => panic!("no network in this organization"),
            NetworkModel::Mesh(n) => n.submit(now, msg),
            NetworkModel::Smart(n) => n.submit(now, msg),
            NetworkModel::Circuit(n) => n.submit(now, msg),
            NetworkModel::Hier(n) => n.submit(now, msg),
        }
    }

    /// Sends a response over a held round-trip reservation, or as a plain
    /// message otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Protocol`] if the fabric's reservation state is
    /// violated (the reservation vanished between the check and the send).
    pub fn respond(&mut self, msg: Message, depart_at: Cycle) -> Result<(), Box<SimError>> {
        debug_assert_eq!(msg.kind, MsgKind::TlbResponse);
        match self {
            NetworkModel::Circuit(f)
                if f.mode() == AcquireMode::RoundTrip && f.has_reservation(msg.id) =>
            {
                f.send_response(msg, depart_at)
            }
            _ => {
                self.submit(depart_at, msg);
                Ok(())
            }
        }
    }

    /// Advances to `cycle`, returning deliveries.
    pub fn advance(&mut self, cycle: Cycle) -> Vec<Delivery> {
        match self {
            NetworkModel::None => Vec::new(),
            NetworkModel::Mesh(n) => n.advance(cycle),
            NetworkModel::Smart(n) => n.advance(cycle),
            NetworkModel::Circuit(n) => n.advance(cycle),
            NetworkModel::Hier(n) => n.advance(cycle),
        }
    }

    /// Earliest cycle with pending network work.
    pub fn next_activity(&self) -> Option<Cycle> {
        match self {
            NetworkModel::None => None,
            NetworkModel::Mesh(n) => n.next_activity(),
            NetworkModel::Smart(n) => n.next_activity(),
            NetworkModel::Circuit(n) => n.next_activity(),
            NetworkModel::Hier(n) => n.next_activity(),
        }
    }

    /// Clears aggregate statistics (after warmup).
    pub fn reset_stats(&mut self) {
        match self {
            NetworkModel::None => {}
            NetworkModel::Mesh(n) => n.reset_stats(),
            NetworkModel::Smart(n) => n.reset_stats(),
            NetworkModel::Circuit(n) => n.reset_stats(),
            NetworkModel::Hier(n) => n.reset_stats(),
        }
    }

    /// Aggregate statistics, if a network exists.
    pub fn stats(&self) -> Option<&NocStats> {
        match self {
            NetworkModel::None => None,
            NetworkModel::Mesh(n) => Some(n.stats()),
            NetworkModel::Smart(n) => Some(n.stats()),
            NetworkModel::Circuit(n) => Some(n.stats()),
            NetworkModel::Hier(n) => Some(n.stats()),
        }
    }

    /// Installs a fault plan into the underlying model (no-op for `None`).
    pub fn install_faults(&mut self, plan: FaultPlan) {
        match self {
            NetworkModel::None => {}
            NetworkModel::Mesh(n) => n.install_faults(plan),
            NetworkModel::Smart(n) => n.install_faults(plan),
            NetworkModel::Circuit(n) => n.install_faults(plan),
            NetworkModel::Hier(n) => n.install_faults(plan),
        }
    }

    /// Fault-action statistics, if a network exists.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        match self {
            NetworkModel::None => None,
            NetworkModel::Mesh(n) => n.fault_stats(),
            NetworkModel::Smart(n) => n.fault_stats(),
            NetworkModel::Circuit(n) => n.fault_stats(),
            NetworkModel::Hier(n) => n.fault_stats(),
        }
    }

    /// Installs a closed-loop recovery policy (no-op for `None`).
    pub fn install_recovery(&mut self, policy: RecoveryPolicy) {
        match self {
            NetworkModel::None => {}
            NetworkModel::Mesh(n) => n.install_recovery(policy),
            NetworkModel::Smart(n) => n.install_recovery(policy),
            NetworkModel::Circuit(n) => n.install_recovery(policy),
            NetworkModel::Hier(n) => n.install_recovery(policy),
        }
    }

    /// Recovery-action statistics, if a network tracks them. The
    /// hierarchical fabric merges gateway-failover counts with its
    /// overlay's re-routing stats, so this returns an owned aggregate.
    pub fn recovery_stats(&self) -> Option<RecoveryStats> {
        match self {
            NetworkModel::None => None,
            NetworkModel::Mesh(n) => n.recovery_stats().cloned(),
            NetworkModel::Smart(n) => n.recovery_stats().cloned(),
            NetworkModel::Circuit(n) => n.recovery_stats().cloned(),
            NetworkModel::Hier(n) => Some(n.recovery_stats_merged()),
        }
    }

    /// A diagnostic snapshot of the network's in-flight state at `cycle`.
    pub fn diagnostics(&self, cycle: Cycle) -> DiagSnapshot {
        match self {
            NetworkModel::None => DiagSnapshot {
                cycle: cycle.value(),
                ..DiagSnapshot::default()
            },
            NetworkModel::Mesh(n) => n.diagnostics(cycle),
            NetworkModel::Smart(n) => n.diagnostics(cycle),
            NetworkModel::Circuit(n) => n.diagnostics(cycle),
            NetworkModel::Hier(n) => n.diagnostics(cycle),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocstar_types::CoreId;

    #[test]
    fn round_trip_detection() {
        let mesh = MeshShape::square_for(16);
        assert!(!NetworkModel::nocstar(mesh, 16, AcquireMode::OneWay, false).is_round_trip());
        assert!(NetworkModel::nocstar(mesh, 16, AcquireMode::RoundTrip, false).is_round_trip());
        assert!(!NetworkModel::None.is_round_trip());
    }

    #[test]
    fn respond_falls_back_to_submit_in_one_way_mode() {
        let mesh = MeshShape::square_for(16);
        let mut net = NetworkModel::nocstar(mesh, 16, AcquireMode::OneWay, false);
        let resp = Message::new(1, CoreId::new(3), CoreId::new(0), MsgKind::TlbResponse);
        net.respond(resp, Cycle::new(5)).unwrap();
        // Arbitrated like any message: setup at 5, deliver at 6.
        assert!(net.advance(Cycle::new(5)).is_empty());
        let d = net.advance(Cycle::new(6));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mesh = MeshShape::square_for(16);
        let mut net = NetworkModel::nocstar(mesh, 16, AcquireMode::OneWay, false);
        net.submit(
            Cycle::ZERO,
            Message::new(1, CoreId::new(0), CoreId::new(3), MsgKind::TlbRequest),
        );
        net.advance(Cycle::ZERO);
        net.advance(Cycle::new(1));
        assert_eq!(net.stats().unwrap().delivered, 1);
        net.reset_stats();
        assert_eq!(net.stats().unwrap().delivered, 0);
        // Resetting a network-less model is a no-op.
        NetworkModel::None.reset_stats();
    }

    #[test]
    #[should_panic(expected = "no network")]
    fn submitting_through_none_panics() {
        let msg = Message::new(1, CoreId::new(0), CoreId::new(1), MsgKind::TlbRequest);
        NetworkModel::None.submit(Cycle::ZERO, msg);
    }

    #[test]
    fn none_network_is_always_idle() {
        let mut none = NetworkModel::None;
        assert_eq!(none.next_activity(), None);
        assert!(none.advance(Cycle::new(5)).is_empty());
        assert!(none.stats().is_none());
    }
}
