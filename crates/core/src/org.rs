//! The physical L2 TLB structures of each organization.

use crate::config::{SystemConfig, TlbOrg};
use nocstar_stats::concurrency::OutstandingTracker;
use nocstar_stats::counter::HitMiss;
use nocstar_tlb::indexing;
use nocstar_tlb::slice::{SlicePorts, TlbSlice};
use nocstar_tlb::sram;
use nocstar_types::{CoreId, VirtPageNum};

/// The set of L2 TLB structures (private L2s, monolithic banks, or shared
/// slices), their tile placement, and per-structure concurrency trackers.
#[derive(Debug)]
pub struct OrgState {
    org: TlbOrg,
    cores: usize,
    structures: Vec<TlbSlice>,
    tiles: Vec<CoreId>,
    /// Per-structure outstanding-access trackers (Fig 6 right).
    pub trackers: Vec<OutstandingTracker>,
    /// Chip-wide outstanding-access tracker (Figs 5, 6 left).
    pub chip_tracker: OutstandingTracker,
    /// SRAM lookup energy of one structure access, in pJ.
    lookup_pj: f64,
}

impl OrgState {
    /// Builds the structures for a configuration.
    pub fn new(config: &SystemConfig) -> Self {
        config.validate();
        let cores = config.cores;
        let ports = SlicePorts::default();
        let (structures, tiles, lookup_pj) = match config.org {
            TlbOrg::Private {
                entries,
                latency_override,
            } => {
                let make = || match latency_override {
                    Some(lat) => TlbSlice::with_latency(entries, TlbOrg::WAYS, ports, lat),
                    None => TlbSlice::new(entries, TlbOrg::WAYS, ports),
                };
                (
                    (0..cores).map(|_| make()).collect::<Vec<_>>(),
                    CoreId::all(cores).collect(),
                    sram::lookup_energy_pj(entries),
                )
            }
            TlbOrg::Monolithic {
                entries_per_core,
                banks,
                latency_override,
                ..
            } => {
                let total = entries_per_core * cores;
                let per_bank = total / banks;
                // The banked monolithic structure's lookup latency is set
                // by the full array (global decode / H-tree), per Fig 3.
                let latency = latency_override.unwrap_or_else(|| sram::lookup_cycles(total));
                (
                    (0..banks)
                        .map(|_| TlbSlice::with_latency(per_bank, TlbOrg::WAYS, ports, latency))
                        .collect(),
                    config.bank_tiles(banks),
                    sram::lookup_energy_pj(total),
                )
            }
            TlbOrg::Distributed { slice_entries }
            | TlbOrg::IdealShared { slice_entries }
            | TlbOrg::Nocstar { slice_entries, .. }
            | TlbOrg::Hier { slice_entries, .. } => (
                (0..cores)
                    .map(|_| TlbSlice::new(slice_entries, TlbOrg::WAYS, ports))
                    .collect(),
                CoreId::all(cores).collect(),
                sram::lookup_energy_pj(slice_entries),
            ),
        };
        let mut structures = structures;
        // Slices/banks are homed by vpn % count; their set index must
        // discard those stripe bits or most sets go unused. Hier homes by
        // vpn % cluster_size (each cluster replicates the residue map),
        // so only the intra-cluster stripe bits are discarded.
        let divisor = match config.org {
            TlbOrg::Hier { cluster_size, .. } => cluster_size as u64,
            _ => structures.len() as u64,
        };
        if config.org.is_shared() {
            for s in &mut structures {
                s.set_index_divisor(divisor);
            }
        }
        let count = structures.len();
        Self {
            org: config.org,
            cores,
            structures,
            tiles,
            trackers: (0..count).map(|_| OutstandingTracker::new()).collect(),
            chip_tracker: OutstandingTracker::new(),
            lookup_pj,
        }
    }

    /// The organization these structures implement.
    pub fn org(&self) -> TlbOrg {
        self.org
    }

    /// Number of structures (cores, banks, or slices).
    pub fn count(&self) -> usize {
        self.structures.len()
    }

    /// Dynamic energy of one lookup in pJ.
    pub fn lookup_pj(&self) -> f64 {
        self.lookup_pj
    }

    /// The structure index and its tile for a request to `vpn` from
    /// `requester`.
    pub fn home_of(&self, vpn: VirtPageNum, requester: CoreId) -> (usize, CoreId) {
        match self.org {
            TlbOrg::Private { .. } => (requester.index(), requester),
            TlbOrg::Monolithic { banks, .. } => {
                let b = indexing::bank_for(vpn, banks).index();
                (b, self.tiles[b])
            }
            TlbOrg::Hier { cluster_size, .. } => {
                let s = indexing::cluster_home_for(vpn, requester, cluster_size).index();
                (s, self.tiles[s])
            }
            _ => {
                let s = indexing::slice_for(vpn, self.cores).index();
                (s, self.tiles[s])
            }
        }
    }

    /// Every structure that may hold `vpn`, with its tile. One home for
    /// the flat shared organizations; one per *cluster* for `hier`, where
    /// each cluster replicates the residue map. Shootdowns must reach all
    /// of them. (Private organizations invalidate all cores instead.)
    pub fn homes_of(&self, vpn: VirtPageNum) -> Vec<(usize, CoreId)> {
        match self.org {
            TlbOrg::Hier { cluster_size, .. } => (0..self.cores / cluster_size)
                .map(|k| {
                    let gw = CoreId::new(k * cluster_size);
                    let s = indexing::cluster_home_for(vpn, gw, cluster_size).index();
                    (s, self.tiles[s])
                })
                .collect(),
            _ => vec![self.home_of(vpn, CoreId::new(0))],
        }
    }

    /// The tile a structure lives on.
    pub fn tile_of(&self, index: usize) -> CoreId {
        self.tiles[index]
    }

    /// Mutable access to one structure.
    pub fn structure_mut(&mut self, index: usize) -> &mut TlbSlice {
        &mut self.structures[index]
    }

    /// Shared access to one structure.
    pub fn structure(&self, index: usize) -> &TlbSlice {
        &self.structures[index]
    }

    /// Flushes all non-global entries everywhere (chip-wide context-switch
    /// behaviour of the paper's x86 model); returns entries dropped.
    pub fn flush_all_non_global(&mut self) -> usize {
        self.structures
            .iter_mut()
            .map(|s| s.flush_non_global())
            .sum()
    }

    /// Flushes one core's private structure (private organization only).
    pub fn flush_core_non_global(&mut self, core: CoreId) -> usize {
        self.structures[core.index()].flush_non_global()
    }

    /// Invalidates a translation in its home structure; returns whether it
    /// was present. For private L2s, invalidates in *all* cores (an IPI
    /// reaches every core).
    pub fn invalidate(&mut self, asid: nocstar_types::Asid, vpn: VirtPageNum) -> bool {
        match self.org {
            TlbOrg::Private { .. } => {
                let mut any = false;
                for s in &mut self.structures {
                    any |= s.invalidate(asid, vpn);
                }
                any
            }
            _ => {
                // One home per flat organization; one per cluster for hier.
                let mut any = false;
                for (idx, _) in self.homes_of(vpn) {
                    any |= self.structures[idx].invalidate(asid, vpn);
                }
                any
            }
        }
    }

    /// Clears every structure's statistics and all concurrency bins
    /// (simulation warmup boundary).
    pub fn reset_stats(&mut self) {
        for s in &mut self.structures {
            s.reset_stats();
        }
        for t in &mut self.trackers {
            t.reset_bins();
        }
        self.chip_tracker.reset_bins();
    }

    /// Per-structure hit/miss statistics (slice/bank load balance).
    pub fn per_structure_stats(&self) -> Vec<HitMiss> {
        self.structures.iter().map(|s| s.array().stats()).collect()
    }

    /// Aggregated hit/miss statistics over all structures.
    pub fn merged_stats(&self) -> HitMiss {
        let mut total = HitMiss::new();
        for s in &self.structures {
            total.merge(s.array().stats());
        }
        total
    }

    /// Total valid entries across structures.
    pub fn occupancy(&self) -> usize {
        self.structures.iter().map(|s| s.array().occupancy()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocstar_tlb::entry::TlbEntry;
    use nocstar_types::time::Cycles;
    use nocstar_types::{Asid, PageSize, PhysPageNum};

    fn v4k(n: u64) -> VirtPageNum {
        VirtPageNum::new(n, PageSize::Size4K)
    }

    fn entry(vpn: u64) -> TlbEntry {
        TlbEntry::new(
            Asid::new(1),
            v4k(vpn),
            PhysPageNum::new(vpn, PageSize::Size4K),
        )
    }

    #[test]
    fn private_homes_are_the_requester() {
        let org = OrgState::new(&SystemConfig::new(16, TlbOrg::paper_private()));
        assert_eq!(org.count(), 16);
        let (idx, tile) = org.home_of(v4k(123), CoreId::new(5));
        assert_eq!(idx, 5);
        assert_eq!(tile, CoreId::new(5));
        assert_eq!(org.structure(0).lookup_latency(), Cycles::new(9));
    }

    #[test]
    fn monolithic_banks_have_full_array_latency() {
        let org = OrgState::new(&SystemConfig::new(32, TlbOrg::paper_monolithic(32)));
        assert_eq!(org.count(), 4);
        // 32k entries: the Fig 3 model gives ~15 cycles.
        let lat = org.structure(0).lookup_latency().value();
        assert!((14..=16).contains(&lat), "latency {lat}");
        // Requests stripe across banks by VPN, regardless of requester.
        let (b0, _) = org.home_of(v4k(0), CoreId::new(7));
        let (b1, _) = org.home_of(v4k(1), CoreId::new(7));
        assert_ne!(b0, b1);
    }

    #[test]
    fn slices_stripe_by_low_vpn_bits() {
        let org = OrgState::new(&SystemConfig::new(16, TlbOrg::paper_nocstar()));
        assert_eq!(org.count(), 16);
        let (idx, tile) = org.home_of(v4k(18), CoreId::new(0));
        assert_eq!(idx, 2);
        assert_eq!(tile, CoreId::new(2));
    }

    #[test]
    fn nocstar_slices_are_area_normalized() {
        let org = OrgState::new(&SystemConfig::new(16, TlbOrg::paper_nocstar()));
        assert_eq!(org.structure(0).array().entries(), 920);
    }

    #[test]
    fn chip_wide_flush_drops_everything_non_global() {
        let mut org = OrgState::new(&SystemConfig::new(4, TlbOrg::paper_distributed()));
        for i in 0..8 {
            let (idx, _) = org.home_of(v4k(i), CoreId::new(0));
            org.structure_mut(idx).insert(entry(i));
        }
        assert_eq!(org.occupancy(), 8);
        assert_eq!(org.flush_all_non_global(), 8);
        assert_eq!(org.occupancy(), 0);
    }

    #[test]
    fn private_invalidation_reaches_all_cores() {
        let mut org = OrgState::new(&SystemConfig::new(4, TlbOrg::paper_private()));
        for c in 0..4 {
            org.structure_mut(c).insert(entry(9));
        }
        assert!(org.invalidate(Asid::new(1), v4k(9)));
        assert_eq!(org.occupancy(), 0);
    }

    #[test]
    fn hier_homes_are_cluster_local() {
        let org = OrgState::new(&SystemConfig::new(64, TlbOrg::paper_hier(16)));
        assert_eq!(org.count(), 64);
        for c in [0usize, 15, 16, 37, 63] {
            let (idx, tile) = org.home_of(v4k(37), CoreId::new(c));
            assert_eq!(idx / 16, c / 16, "home stays in the requester's cluster");
            assert_eq!(tile.index(), idx);
            // Residue within the cluster matches the flat stripe rule.
            assert_eq!(idx % 16, 37 % 16);
        }
    }

    #[test]
    fn hier_set_index_discards_only_cluster_stripe_bits() {
        // With 64 slices but cluster_size 4, pages striding by 4 land in
        // the same slice and must fill distinct sets, not one set.
        let mut org = OrgState::new(&SystemConfig::new(
            64,
            TlbOrg::Hier {
                slice_entries: 1024,
                cluster_size: 4,
                intra: nocstar_noc::hier::IntraKind::Bus,
                inter: nocstar_noc::hier::InterKind::Mesh,
            },
        ));
        let sets = 1024 / TlbOrg::WAYS;
        let (idx, _) = org.home_of(v4k(0), CoreId::new(0));
        for i in 0..sets as u64 {
            org.structure_mut(idx).insert(entry(i * 4));
        }
        assert_eq!(org.structure(idx).array().occupancy(), sets);
    }

    #[test]
    fn hier_invalidation_reaches_every_cluster_replica() {
        let mut org = OrgState::new(&SystemConfig::new(64, TlbOrg::paper_hier(16)));
        let homes = org.homes_of(v4k(7));
        assert_eq!(homes.len(), 4, "one replica slice per cluster");
        for &(idx, _) in &homes {
            org.structure_mut(idx).insert(entry(7));
        }
        assert!(org.invalidate(Asid::new(1), v4k(7)));
        assert_eq!(org.occupancy(), 0, "all replicas invalidated");
    }

    #[test]
    fn shared_invalidation_targets_the_home_slice() {
        let mut org = OrgState::new(&SystemConfig::new(4, TlbOrg::paper_distributed()));
        let (idx, _) = org.home_of(v4k(7), CoreId::new(0));
        org.structure_mut(idx).insert(entry(7));
        assert!(org.invalidate(Asid::new(1), v4k(7)));
        assert!(!org.invalidate(Asid::new(1), v4k(7)));
    }
}
