//! The simulation event queue: per-domain calendar-queue shards.
//!
//! The queue is sharded by simulation domain (see `Simulation` and
//! `DESIGN.md §12`): each shard owns the events of the tiles it covers and
//! stores near-future events in a calendar ring of per-cycle buckets
//! (O(1) push/pop) with a binary-heap overflow for events beyond the ring
//! window. Popping merges the shards by `(time, global sequence)`, so the
//! pop order is *exactly* the order the old single binary heap produced:
//! earliest time first, FIFO among same-cycle events chip-wide. A
//! one-shard queue is the sequential configuration and the default.

use nocstar_types::time::Cycle;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A hardware thread pulls its next trace event.
    ThreadNext(usize),
    /// A hardware thread issues the memory access it was waiting on.
    Issue(usize),
    /// A slice/bank finished looking up transaction `tx`.
    SliceDone(u64),
    /// A page walk for transaction `tx` completed.
    WalkDone(u64),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    at: u64,
    seq: u64,
    event: Event,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by (time, insertion order).
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Cycles covered by a shard's calendar ring. Events scheduled further
/// than this past the shard's cursor go to the overflow heap (rare:
/// context-switch traps and long trace gaps).
const WINDOW: usize = 512;

/// One cycle's events within the calendar window, appended in push order
/// (= global sequence order, since pushes carry increasing sequences).
#[derive(Debug, Default)]
struct Bucket {
    cycle: u64,
    items: Vec<(u64, Event)>,
    head: usize,
}

impl Bucket {
    fn is_drained(&self) -> bool {
        self.head == self.items.len()
    }
}

/// One domain's events: a calendar ring plus an overflow heap.
#[derive(Debug)]
struct Shard {
    buckets: Vec<Bucket>,
    overflow: BinaryHeap<Entry>,
    /// Lower bound on every un-popped bucket cycle; advanced on pop.
    cursor: u64,
    /// Scan accelerator: no bucket items exist in `[cursor, hint)`.
    hint: u64,
    /// Items currently in buckets (the rest are in `overflow`).
    in_window: usize,
    len: usize,
}

impl Shard {
    fn new() -> Self {
        Self {
            buckets: (0..WINDOW).map(|_| Bucket::default()).collect(),
            overflow: BinaryHeap::new(),
            cursor: 0,
            hint: 0,
            in_window: 0,
            len: 0,
        }
    }

    fn push(&mut self, at: u64, seq: u64, event: Event) {
        self.len += 1;
        if at >= self.cursor && at - self.cursor < WINDOW as u64 {
            let b = &mut self.buckets[(at % WINDOW as u64) as usize];
            if b.is_drained() {
                b.items.clear();
                b.head = 0;
                b.cycle = at;
            }
            debug_assert_eq!(b.cycle, at, "two live cycles share a bucket");
            b.items.push((seq, event));
            self.in_window += 1;
            if at < self.hint {
                self.hint = at;
            }
        } else {
            // Outside the ring window (far future, or — never in practice
            // — the past): the heap handles it exactly, just slower.
            self.overflow.push(Entry { at, seq, event });
        }
    }

    /// The earliest pending `(time, sequence)` key, scanning the ring from
    /// the cached hint and consulting the overflow heap.
    fn peek_key(&mut self) -> Option<(u64, u64)> {
        let window = if self.in_window == 0 {
            None
        } else {
            let mut c = self.hint.max(self.cursor);
            loop {
                let b = &self.buckets[(c % WINDOW as u64) as usize];
                if !b.is_drained() && b.cycle == c {
                    self.hint = c;
                    break Some((c, b.items[b.head].0));
                }
                c += 1;
                debug_assert!(
                    c < self.cursor + WINDOW as u64 + 1,
                    "in_window count out of sync"
                );
            }
        };
        let over = self.overflow.peek().map(|e| (e.at, e.seq));
        match (window, over) {
            (Some(w), Some(o)) => Some(w.min(o)),
            (w, o) => w.or(o),
        }
    }

    /// Pops the event with the given key (which `peek_key` just returned).
    fn pop(&mut self, key: (u64, u64)) -> (Cycle, Event) {
        self.len -= 1;
        self.cursor = self.cursor.max(key.0);
        self.hint = self.hint.max(self.cursor);
        if self.overflow.peek().is_some_and(|e| (e.at, e.seq) == key) {
            let e = match self.overflow.pop() {
                Some(e) => e,
                None => unreachable!("peeked entry vanished"),
            };
            return (Cycle::new(e.at), e.event);
        }
        let b = &mut self.buckets[(key.0 % WINDOW as u64) as usize];
        debug_assert!(!b.is_drained() && b.cycle == key.0, "pop of a stale key");
        let (seq, event) = b.items[b.head];
        debug_assert_eq!(seq, key.1, "bucket items out of sequence order");
        b.head += 1;
        self.in_window -= 1;
        (Cycle::new(key.0), event)
    }
}

/// A deterministic min-queue of timed events (FIFO among same-cycle
/// events chip-wide), sharded by simulation domain.
#[derive(Debug)]
pub struct EventQueue {
    shards: Vec<Shard>,
    /// Exact earliest `(time, sequence)` per shard, maintained on every
    /// push and pop so the cross-shard merge is a flat scan of this array
    /// rather than a ring walk per shard.
    mins: Vec<Option<(u64, u64)>>,
    seq: u64,
    len: usize,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::sharded(1)
    }
}

impl EventQueue {
    /// An empty queue with one shard per simulation domain.
    ///
    /// # Panics
    ///
    /// Panics if `domains` is zero.
    pub fn sharded(domains: usize) -> Self {
        assert!(domains > 0, "need at least one domain");
        Self {
            shards: (0..domains).map(|_| Shard::new()).collect(),
            mins: vec![None; domains],
            seq: 0,
            len: 0,
        }
    }

    /// Schedules `event` to fire at `at`, in `domain`'s shard.
    ///
    /// # Panics
    ///
    /// Panics if `domain` is out of range.
    pub fn push_in(&mut self, domain: usize, at: Cycle, event: Event) {
        self.seq += 1;
        self.len += 1;
        let key = (at.value(), self.seq);
        self.shards[domain].push(at.value(), self.seq, event);
        if self.mins[domain].is_none_or(|m| key < m) {
            self.mins[domain] = Some(key);
        }
    }

    /// The time of the earliest pending event.
    pub fn next_time(&mut self) -> Option<Cycle> {
        self.mins
            .iter()
            .flatten()
            .min()
            .map(|&(at, _)| Cycle::new(at))
    }

    /// Pops the earliest event if it fires at or before `now`. Among
    /// same-cycle events the chip-wide push order wins, whatever shard
    /// each event lives in.
    pub fn pop_due(&mut self, now: Cycle) -> Option<(Cycle, Event)> {
        let mut best: Option<((u64, u64), usize)> = None;
        for (i, &key) in self.mins.iter().enumerate() {
            if let Some(key) = key {
                if best.is_none_or(|(bk, _)| key < bk) {
                    best = Some((key, i));
                }
            }
        }
        let (key, i) = best?;
        if key.0 > now.value() {
            return None;
        }
        self.len -= 1;
        let popped = self.shards[i].pop(key);
        self.mins[i] = self.shards[i].peek_key();
        Some(popped)
    }

    /// Number of queued events across all shards (diagnostic snapshots).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Number of queued events in the deepest shard (diagnostic
    /// snapshots; equals [`len`](Self::len) for a single-shard queue).
    pub fn max_domain_depth(&self) -> usize {
        self.shards.iter().map(|s| s.len).max().unwrap_or(0)
    }

    /// True when no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::sharded(1);
        q.push_in(0, Cycle::new(5), Event::ThreadNext(1));
        q.push_in(0, Cycle::new(3), Event::ThreadNext(2));
        q.push_in(0, Cycle::new(4), Event::ThreadNext(3));
        assert_eq!(q.next_time(), Some(Cycle::new(3)));
        let order: Vec<Event> = std::iter::from_fn(|| q.pop_due(Cycle::new(10)))
            .map(|(_, e)| e)
            .collect();
        assert_eq!(
            order,
            vec![
                Event::ThreadNext(2),
                Event::ThreadNext(3),
                Event::ThreadNext(1)
            ]
        );
    }

    #[test]
    fn same_cycle_events_are_fifo() {
        let mut q = EventQueue::sharded(1);
        for i in 0..5 {
            q.push_in(0, Cycle::new(7), Event::Issue(i));
        }
        let order: Vec<Event> = std::iter::from_fn(|| q.pop_due(Cycle::new(7)))
            .map(|(_, e)| e)
            .collect();
        assert_eq!(order, (0..5).map(Event::Issue).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::sharded(1);
        q.push_in(0, Cycle::new(9), Event::WalkDone(1));
        assert!(q.pop_due(Cycle::new(8)).is_none());
        assert!(q.pop_due(Cycle::new(9)).is_some());
        assert!(q.next_time().is_none());
    }

    #[test]
    fn same_cycle_fifo_holds_across_shards() {
        let mut q = EventQueue::sharded(4);
        for i in 0..12 {
            q.push_in(i % 4, Cycle::new(7), Event::Issue(i));
        }
        let order: Vec<Event> = std::iter::from_fn(|| q.pop_due(Cycle::new(7)))
            .map(|(_, e)| e)
            .collect();
        assert_eq!(order, (0..12).map(Event::Issue).collect::<Vec<_>>());
    }

    #[test]
    fn sharded_pop_merges_by_time_then_order() {
        let mut q = EventQueue::sharded(2);
        q.push_in(1, Cycle::new(4), Event::Issue(0));
        q.push_in(0, Cycle::new(2), Event::Issue(1));
        q.push_in(1, Cycle::new(2), Event::Issue(2));
        let order: Vec<(u64, Event)> = std::iter::from_fn(|| q.pop_due(Cycle::new(9)))
            .map(|(at, e)| (at.value(), e))
            .collect();
        assert_eq!(
            order,
            vec![
                (2, Event::Issue(1)),
                (2, Event::Issue(2)),
                (4, Event::Issue(0)),
            ]
        );
    }

    #[test]
    fn far_future_events_overflow_and_return() {
        let mut q = EventQueue::sharded(1);
        // Far beyond the calendar window, plus one nearby event.
        q.push_in(0, Cycle::new(100_000), Event::WalkDone(1));
        q.push_in(0, Cycle::new(3), Event::Issue(0));
        assert_eq!(q.len(), 2);
        assert_eq!(q.next_time(), Some(Cycle::new(3)));
        assert!(q.pop_due(Cycle::new(3)).is_some());
        assert_eq!(q.next_time(), Some(Cycle::new(100_000)));
        // After time advances, pushes near the new cursor still order
        // correctly against the overflowed event.
        q.push_in(0, Cycle::new(99_999), Event::Issue(7));
        let order: Vec<Event> = std::iter::from_fn(|| q.pop_due(Cycle::new(200_000)))
            .map(|(_, e)| e)
            .collect();
        assert_eq!(order, vec![Event::Issue(7), Event::WalkDone(1)]);
        assert!(q.is_empty());
    }

    #[test]
    fn window_buckets_are_reused_across_laps() {
        let mut q = EventQueue::sharded(1);
        let mut popped = Vec::new();
        // Walk time forward several full calendar windows.
        for lap in 0u64..5 {
            for i in 0u64..100 {
                let at = lap * 700 + i * 7;
                q.push_in(0, Cycle::new(at), Event::Issue((lap * 100 + i) as usize));
            }
            while let Some((at, e)) = q.pop_due(Cycle::new(lap * 700 + 700)) {
                popped.push((at.value(), e));
            }
        }
        assert_eq!(popped.len(), 500);
        assert!(popped.windows(2).all(|w| w[0].0 <= w[1].0), "time order");
        assert!(q.is_empty());
    }

    #[test]
    fn depth_accounting_tracks_shards() {
        let mut q = EventQueue::sharded(3);
        q.push_in(0, Cycle::new(1), Event::Issue(0));
        q.push_in(2, Cycle::new(1), Event::Issue(1));
        q.push_in(2, Cycle::new(2), Event::Issue(2));
        assert_eq!(q.len(), 3);
        assert_eq!(q.max_domain_depth(), 2);
        q.pop_due(Cycle::new(2));
        q.pop_due(Cycle::new(2));
        q.pop_due(Cycle::new(2));
        assert_eq!(q.max_domain_depth(), 0);
        assert!(q.is_empty());
    }

    /// The sharded queue must reproduce the reference order (a plain
    /// sorted-by-(time, push-order) list) for an arbitrary interleaving.
    #[test]
    fn matches_reference_semantics_under_mixed_load() {
        let mut q = EventQueue::sharded(3);
        let mut reference: Vec<(u64, u64, usize)> = Vec::new();
        // A deterministic pseudo-random schedule: times jump around,
        // some beyond the window, across all shards.
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for i in 0..1000usize {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let at = x % 2048;
            let dom = (x >> 32) as usize % 3;
            q.push_in(dom, Cycle::new(at), Event::Issue(i));
            reference.push((at, i as u64, i));
        }
        reference.sort_by_key(|&(at, seq, _)| (at, seq));
        let mut popped = Vec::new();
        while let Some((at, e)) = q.pop_due(Cycle::new(1 << 30)) {
            popped.push((at.value(), e));
        }
        let expect: Vec<(u64, Event)> = reference
            .iter()
            .map(|&(at, _, i)| (at, Event::Issue(i)))
            .collect();
        assert_eq!(popped, expect);
    }
}
