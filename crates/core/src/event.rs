//! The simulation event queue.

use nocstar_types::time::Cycle;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A hardware thread pulls its next trace event.
    ThreadNext(usize),
    /// A hardware thread issues the memory access it was waiting on.
    Issue(usize),
    /// A slice/bank finished looking up transaction `tx`.
    SliceDone(u64),
    /// A page walk for transaction `tx` completed.
    WalkDone(u64),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    at: Cycle,
    seq: u64,
    event: Event,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by (time, insertion order).
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic min-heap of timed events (FIFO among same-cycle events).
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` to fire at `at`.
    pub fn push(&mut self, at: Cycle, event: Event) {
        self.seq += 1;
        self.heap.push(Entry {
            at,
            seq: self.seq,
            event,
        });
    }

    /// The time of the earliest pending event.
    pub fn next_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pops the earliest event if it fires at or before `now`.
    pub fn pop_due(&mut self, now: Cycle) -> Option<(Cycle, Event)> {
        if self.heap.peek().is_some_and(|e| e.at <= now) {
            self.heap.pop().map(|e| (e.at, e.event))
        } else {
            None
        }
    }

    /// Number of queued events (diagnostic snapshots).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(5), Event::ThreadNext(1));
        q.push(Cycle::new(3), Event::ThreadNext(2));
        q.push(Cycle::new(4), Event::ThreadNext(3));
        assert_eq!(q.next_time(), Some(Cycle::new(3)));
        let order: Vec<Event> = std::iter::from_fn(|| q.pop_due(Cycle::new(10)))
            .map(|(_, e)| e)
            .collect();
        assert_eq!(
            order,
            vec![
                Event::ThreadNext(2),
                Event::ThreadNext(3),
                Event::ThreadNext(1)
            ]
        );
    }

    #[test]
    fn same_cycle_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.push(Cycle::new(7), Event::Issue(i));
        }
        let order: Vec<Event> = std::iter::from_fn(|| q.pop_due(Cycle::new(7)))
            .map(|(_, e)| e)
            .collect();
        assert_eq!(order, (0..5).map(Event::Issue).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(9), Event::WalkDone(1));
        assert!(q.pop_due(Cycle::new(8)).is_none());
        assert!(q.pop_due(Cycle::new(9)).is_some());
        assert!(q.next_time().is_none());
    }
}
