//! The NOCSTAR system model — the paper's primary contribution, assembled.
//!
//! This crate ties the substrates (TLBs, memory system, interconnects,
//! workloads, energy model) into a configurable full-system simulation:
//!
//! * [`config`] — [`SystemConfig`]/[`TlbOrg`]: core count, L2 TLB
//!   organization (private / monolithic / distributed / NOCSTAR / ideal),
//!   SMT, L1 scaling, prefetch, page-walk and shootdown policies (Table II
//!   and the §V studies).
//! * [`assignment`] — mapping workloads onto hardware threads
//!   (homogeneous, 4-app mixes, storm, slice hammer).
//! * [`sim`] — the event-driven simulation loop implementing the paper's
//!   translation timeline (Fig 10): L1 lookup, path setup, single-cycle
//!   traversal, pipelined slice lookup, response, walk policies,
//!   shootdown relay via invalidation leaders.
//! * [`report`] — [`SimReport`] with the measurements every figure of the
//!   paper is computed from.
//! * [`sampling`] — per-window samples and confidence-interval estimates
//!   for sampled fast-forward replay (`SAMPLING.md`).
//!
//! # Examples
//!
//! ```
//! use nocstar_core::assignment::WorkloadAssignment;
//! use nocstar_core::config::{SystemConfig, TlbOrg};
//! use nocstar_core::sim::Simulation;
//! use nocstar_workloads::preset::Preset;
//!
//! let config = SystemConfig::new(4, TlbOrg::paper_nocstar());
//! let workload = WorkloadAssignment::preset(&config, Preset::Gups);
//! let report = Simulation::new(config, workload).run(200);
//! assert_eq!(report.accesses, 4 * 200);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assignment;
pub mod config;
mod event;
pub mod network;
pub mod org;
pub mod report;
pub mod sampling;
pub mod sim;

pub use assignment::WorkloadAssignment;
pub use config::{MonolithicNet, SystemConfig, TlbOrg, WalkPolicy};
pub use nocstar_faults::{FaultPlan, SimError};
pub use report::SimReport;
pub use sampling::{MetricEstimate, SamplingReport};
pub use sim::{SimAbort, Simulation};
