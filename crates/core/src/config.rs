//! Full-system configuration (paper §IV and Table II).

use nocstar_mem::walker::WalkLatency;
use nocstar_noc::circuit::AcquireMode;
use nocstar_noc::hier::{InterKind, IntraKind};
use nocstar_tlb::l1::L1Config;
use nocstar_tlb::prefetch::PrefetchDepth;
use nocstar_tlb::shootdown::LeaderPolicy;
use nocstar_types::time::Cycles;
use nocstar_types::{CoreId, MeshShape};

/// Interconnect used to reach a monolithic shared TLB's banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonolithicNet {
    /// Traditional multi-hop mesh (2 cycles per hop).
    Mesh,
    /// SMART bypass mesh with the given HPCmax.
    Smart(usize),
    /// Zero-latency interconnect (the idealized points of Fig 4).
    Ideal,
}

/// Where page-table walks execute on a shared-slice miss (Fig 17).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WalkPolicy {
    /// The remote slice replies with a miss message; the requesting core
    /// walks, then sends the translation back for insertion. The paper
    /// finds this slightly better (no remote-cache pollution).
    #[default]
    AtRequester,
    /// The core co-located with the slice walks and replies with the
    /// translation (fewer messages, pollutes the remote core's caches).
    AtRemote,
}

/// The L2 TLB organization under test (paper Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TlbOrg {
    /// Per-core private L2 TLBs — the baseline all speedups are relative to.
    Private {
        /// Entries per core (Haswell: 1024, 8-way).
        entries: usize,
        /// Explicit lookup latency; `None` uses the Fig 3 SRAM model.
        latency_override: Option<Cycles>,
    },
    /// A monolithic shared L2 TLB, banked, at the chip edge.
    Monolithic {
        /// Entries per core of capacity (total = cores x this).
        entries_per_core: usize,
        /// Bank count (the paper settles on 4 for 16/32 cores, 8 for 64).
        banks: usize,
        /// How cores reach the banks.
        net: MonolithicNet,
        /// Explicit *total* access latency (Fig 4 sweeps 9–25 cycles with
        /// `net = Ideal`); `None` uses the Fig 3 SRAM model.
        latency_override: Option<Cycles>,
    },
    /// Per-core shared slices over a contention-free multi-hop mesh.
    Distributed {
        /// Entries per slice (1024).
        slice_entries: usize,
    },
    /// Per-core shared slices over the NOCSTAR circuit-switched fabric.
    Nocstar {
        /// Entries per slice (920: area-normalized against 1024 private,
        /// §IV).
        slice_entries: usize,
        /// Maximum hops per traversal cycle.
        hpc_max: usize,
        /// Link-reservation mode (Fig 16 left).
        acquire: AcquireMode,
        /// Contention-free fabric (the `NOCSTAR (ideal)` series of Fig 15).
        ideal_fabric: bool,
    },
    /// Per-core shared slices with a zero-latency interconnect — the
    /// `Ideal` upper bound in Figs 12–15.
    IdealShared {
        /// Entries per slice.
        slice_entries: usize,
    },
    /// Per-core shared slices over a two-level hierarchical fabric
    /// (`DESIGN.md §13`): clusters of `cluster_size` tiles with an
    /// intra-cluster bus/crossbar and a mesh/SMART overlay between
    /// cluster gateways. Homing is cluster-local: a core's set ranges
    /// map to slices in its own cluster, so lookups never pay overlay
    /// latency (capacity is shared per cluster, not chip-wide).
    Hier {
        /// Entries per slice (1024).
        slice_entries: usize,
        /// Tiles per cluster (`--cluster-size`, default 16); must evenly
        /// divide the core count.
        cluster_size: usize,
        /// Intra-cluster fabric.
        intra: IntraKind,
        /// Inter-cluster overlay.
        inter: InterKind,
    },
}

impl TlbOrg {
    /// L2 TLB associativity used throughout the paper.
    pub const WAYS: usize = 8;

    /// The paper's private baseline: 1024-entry, 8-way, 9-cycle L2 TLBs.
    pub fn paper_private() -> Self {
        TlbOrg::Private {
            entries: 1024,
            latency_override: Some(Cycles::new(9)),
        }
    }

    /// The paper's monolithic configuration for a core count (4 banks for
    /// 16/32 cores, 8 banks for 64+), over a multi-hop mesh.
    pub fn paper_monolithic(cores: usize) -> Self {
        TlbOrg::Monolithic {
            entries_per_core: 1024,
            banks: if cores >= 64 { 8 } else { 4 },
            net: MonolithicNet::Mesh,
            latency_override: None,
        }
    }

    /// The paper's distributed configuration: 1024-entry slices on a mesh.
    pub fn paper_distributed() -> Self {
        TlbOrg::Distributed {
            slice_entries: 1024,
        }
    }

    /// The paper's NOCSTAR configuration: 920-entry slices
    /// (area-normalized), single-cycle fabric, one-way acquire.
    pub fn paper_nocstar() -> Self {
        TlbOrg::Nocstar {
            slice_entries: 920,
            hpc_max: 16,
            acquire: AcquireMode::OneWay,
            ideal_fabric: false,
        }
    }

    /// The zero-interconnect-latency upper bound.
    pub fn paper_ideal() -> Self {
        TlbOrg::IdealShared {
            slice_entries: 1024,
        }
    }

    /// The hierarchical scale-up configuration: 1024-entry slices,
    /// cluster-local bus, contended mesh overlay between gateways.
    pub fn paper_hier(cluster_size: usize) -> Self {
        TlbOrg::Hier {
            slice_entries: 1024,
            cluster_size,
            intra: IntraKind::Bus,
            inter: InterKind::Mesh,
        }
    }

    /// Whether this organization shares L2 capacity among cores.
    pub fn is_shared(&self) -> bool {
        !matches!(self, TlbOrg::Private { .. })
    }

    /// A short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            TlbOrg::Private { .. } => "private",
            TlbOrg::Monolithic {
                net: MonolithicNet::Smart(_),
                ..
            } => "monolithic(SMART)",
            TlbOrg::Monolithic { .. } => "monolithic",
            TlbOrg::Distributed { .. } => "distributed",
            TlbOrg::Nocstar {
                ideal_fabric: true, ..
            } => "nocstar(ideal)",
            TlbOrg::Nocstar { .. } => "nocstar",
            TlbOrg::IdealShared { .. } => "ideal",
            TlbOrg::Hier {
                inter: InterKind::Smart(_),
                ..
            } => "hier(SMART)",
            TlbOrg::Hier {
                intra: IntraKind::Xbar,
                ..
            } => "hier(xbar)",
            TlbOrg::Hier { .. } => "hier",
        }
    }
}

/// Everything that defines a simulated system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Core (tile) count.
    pub cores: usize,
    /// Hardware threads per core (Table III studies 1, 2, 4).
    pub smt: usize,
    /// The L2 TLB organization.
    pub org: TlbOrg,
    /// L1 TLB capacity scale (Fig 6 studies 0.5x and 1.5x).
    pub l1_scale: f64,
    /// Adjacent-page prefetch depth (Table III).
    pub prefetch: PrefetchDepth,
    /// Where walks run on shared-slice misses (Fig 17).
    pub walk_policy: WalkPolicy,
    /// Variable (through the caches) or fixed walk latency (Table III).
    pub walk_latency: WalkLatency,
    /// Shootdown leader granularity (Fig 16 right).
    pub leader_policy: LeaderPolicy,
    /// Transparent 2 MiB superpages enabled (Fig 13) or 4 KiB-only (Fig 12).
    pub thp: bool,
    /// Workload/trace seed.
    pub seed: u64,
    /// Collect the detailed metrics registry (per-slice occupancy and
    /// queue waits, per-link utilization, arbitration counts, walk
    /// histograms, per-core stall breakdowns). Off by default: disabled
    /// metrics cost one predicted branch per update and never allocate.
    pub metrics: bool,
    /// Ring-buffer capacity for cycle-level event tracing; `0` (the
    /// default) disables tracing entirely. When full, the oldest records
    /// are overwritten and counted as dropped.
    pub trace_capacity: usize,
    /// Hard simulated-cycle budget: if set, a run that would advance past
    /// this cycle aborts with a structured
    /// [`CycleBudgetExceeded`](nocstar_faults::SimError::CycleBudgetExceeded)
    /// error carrying a partial report, instead of running unbounded.
    pub max_cycles: Option<u64>,
    /// Livelock watchdog window: if simulated time advances this many
    /// cycles without any memory access completing chip-wide, the run
    /// aborts with [`Livelock`](nocstar_faults::SimError::Livelock). The
    /// default (2 million cycles) is orders of magnitude above any legal
    /// inter-completion gap.
    pub livelock_window: u64,
    /// Simulation domains for epoch-parallel execution (`DESIGN.md §12`):
    /// the chip's tiles are split into this many contiguous domains, each
    /// with its own event-queue shard and trace-feed worker thread. `1`
    /// (the default) is the plain sequential path. Any value produces a
    /// byte-identical `SimReport`; it only changes how the work is
    /// scheduled on the host. Clamped to the hardware thread count.
    pub parallel_domains: usize,
}

impl SystemConfig {
    /// A paper-faithful Haswell system with the given core count and
    /// organization; THP on, no prefetch, walk at requester, every core
    /// relaying its own shootdowns.
    pub fn new(cores: usize, org: TlbOrg) -> Self {
        Self {
            cores,
            smt: 1,
            org,
            l1_scale: 1.0,
            prefetch: PrefetchDepth::disabled(),
            walk_policy: WalkPolicy::default(),
            walk_latency: WalkLatency::Variable,
            leader_policy: LeaderPolicy::EveryCore,
            thp: true,
            seed: 0xcafe,
            metrics: false,
            trace_capacity: 0,
            max_cycles: None,
            livelock_window: 2_000_000,
            parallel_domains: 1,
        }
    }

    /// The chip's mesh floorplan.
    pub fn mesh(&self) -> MeshShape {
        MeshShape::square_for(self.cores)
    }

    /// Total hardware threads.
    pub fn threads(&self) -> usize {
        self.cores * self.smt
    }

    /// The L1 TLB sizing after scaling.
    pub fn l1_config(&self) -> L1Config {
        L1Config::haswell().scale(self.l1_scale)
    }

    /// The tiles hosting the monolithic TLB's banks: spread along the
    /// chip's south edge (the paper places the monolithic structure at one
    /// end of the chip, §II-C).
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero or exceeds the mesh's columns x 2.
    pub fn bank_tiles(&self, banks: usize) -> Vec<CoreId> {
        assert!(banks > 0, "need at least one bank");
        let mesh = self.mesh();
        let cols = mesh.cols();
        (0..banks)
            .map(|b| {
                let x = (b * cols + cols / 2) / banks % cols;
                mesh.id_at(nocstar_types::Coord::new(x, mesh.rows() - 1))
            })
            .collect()
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (zero cores/SMT, bad scales).
    pub fn validate(&self) {
        assert!(self.cores > 0, "need at least one core");
        assert!(self.smt > 0, "need at least one thread per core");
        assert!(
            self.l1_scale.is_finite() && self.l1_scale > 0.0,
            "bad L1 scale"
        );
        assert!(self.livelock_window > 0, "livelock window must be nonzero");
        assert!(self.parallel_domains >= 1, "need at least one domain");
        match self.org {
            TlbOrg::Private { entries, .. } => {
                assert!(
                    entries > 0 && entries % TlbOrg::WAYS == 0,
                    "bad private size"
                )
            }
            TlbOrg::Monolithic {
                entries_per_core,
                banks,
                ..
            } => {
                assert!(entries_per_core > 0, "bad monolithic size");
                assert!(
                    banks > 0 && banks <= self.cores,
                    "banks must be in 1..=cores"
                );
                assert!(
                    (entries_per_core * self.cores).is_multiple_of(banks * TlbOrg::WAYS),
                    "banked capacity must divide evenly"
                );
            }
            TlbOrg::Distributed { slice_entries } | TlbOrg::IdealShared { slice_entries } => {
                assert!(
                    slice_entries > 0 && slice_entries % TlbOrg::WAYS == 0,
                    "bad slice size"
                );
            }
            TlbOrg::Nocstar {
                slice_entries,
                hpc_max,
                ..
            } => {
                assert!(
                    slice_entries > 0 && slice_entries % TlbOrg::WAYS == 0,
                    "bad slice size"
                );
                assert!(hpc_max > 0, "HPCmax must be nonzero");
            }
            TlbOrg::Hier {
                slice_entries,
                cluster_size,
                inter,
                ..
            } => {
                assert!(
                    slice_entries > 0 && slice_entries % TlbOrg::WAYS == 0,
                    "bad slice size"
                );
                assert!(
                    cluster_size > 0
                        && cluster_size <= self.cores
                        && self.cores.is_multiple_of(cluster_size),
                    "cluster size must evenly partition the cores"
                );
                if let InterKind::Smart(hpc) = inter {
                    assert!(hpc > 0, "HPCmax must be nonzero");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_presets_match_table_2() {
        match TlbOrg::paper_private() {
            TlbOrg::Private {
                entries,
                latency_override,
            } => {
                assert_eq!(entries, 1024);
                assert_eq!(latency_override, Some(Cycles::new(9)));
            }
            _ => unreachable!(),
        }
        match TlbOrg::paper_nocstar() {
            TlbOrg::Nocstar { slice_entries, .. } => assert_eq!(slice_entries, 920),
            _ => unreachable!(),
        }
        match TlbOrg::paper_monolithic(32) {
            TlbOrg::Monolithic { banks, .. } => assert_eq!(banks, 4),
            _ => unreachable!(),
        }
        match TlbOrg::paper_monolithic(64) {
            TlbOrg::Monolithic { banks, .. } => assert_eq!(banks, 8),
            _ => unreachable!(),
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            TlbOrg::paper_private().label(),
            TlbOrg::paper_monolithic(32).label(),
            TlbOrg::paper_distributed().label(),
            TlbOrg::paper_nocstar().label(),
            TlbOrg::paper_ideal().label(),
            TlbOrg::paper_hier(16).label(),
            TlbOrg::Hier {
                slice_entries: 1024,
                cluster_size: 16,
                intra: IntraKind::Xbar,
                inter: InterKind::Mesh,
            }
            .label(),
            TlbOrg::Hier {
                slice_entries: 1024,
                cluster_size: 16,
                intra: IntraKind::Bus,
                inter: InterKind::Smart(8),
            }
            .label(),
        ];
        let set: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(set.len(), labels.len());
    }

    #[test]
    fn bank_tiles_sit_on_the_south_edge() {
        let cfg = SystemConfig::new(32, TlbOrg::paper_monolithic(32));
        let tiles = cfg.bank_tiles(4);
        assert_eq!(tiles.len(), 4);
        let mesh = cfg.mesh();
        for t in &tiles {
            assert_eq!(mesh.coord_of(*t).y, mesh.rows() - 1);
        }
        // Banks are spread out, not stacked on one tile.
        let set: std::collections::HashSet<_> = tiles.iter().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn validate_accepts_all_paper_configs() {
        for cores in [16, 32, 64] {
            for org in [
                TlbOrg::paper_private(),
                TlbOrg::paper_monolithic(cores),
                TlbOrg::paper_distributed(),
                TlbOrg::paper_nocstar(),
                TlbOrg::paper_ideal(),
                TlbOrg::paper_hier(16),
            ] {
                SystemConfig::new(cores, org).validate();
            }
        }
    }

    #[test]
    #[should_panic(expected = "evenly partition")]
    fn ragged_cluster_size_rejected() {
        SystemConfig::new(24, TlbOrg::paper_hier(16)).validate();
    }

    #[test]
    #[should_panic(expected = "banks must be in")]
    fn too_many_banks_rejected() {
        let cfg = SystemConfig::new(
            4,
            TlbOrg::Monolithic {
                entries_per_core: 1024,
                banks: 8,
                net: MonolithicNet::Mesh,
                latency_override: None,
            },
        );
        cfg.validate();
    }

    #[test]
    fn threads_account_for_smt() {
        let mut cfg = SystemConfig::new(16, TlbOrg::paper_private());
        cfg.smt = 4;
        assert_eq!(cfg.threads(), 64);
    }
}
