//! Simulation results.

use nocstar_energy::account::EnergyAccount;
use nocstar_noc::NocStats;
use nocstar_stats::counter::HitMiss;
use nocstar_stats::histogram::ConcurrencyBins;
use nocstar_stats::latency::LatencyRecorder;
use nocstar_stats::summary;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Everything measured by one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Workload label.
    pub label: String,
    /// Organization label (`private`, `nocstar`, …).
    pub org_label: String,
    /// Core count.
    pub cores: usize,
    /// Total runtime in cycles (until the last thread finished its quota).
    pub cycles: u64,
    /// Total memory accesses completed.
    pub accesses: u64,
    /// Per-hardware-thread finish times (cycle of each thread's last
    /// access) — the basis for per-application speedups in Fig 18.
    pub per_thread_finish: Vec<u64>,
    /// Combined L1 TLB hit/miss statistics.
    pub l1: HitMiss,
    /// Combined L2 TLB (private / banks / slices) hit/miss statistics.
    pub l2: HitMiss,
    /// Per-structure (private L2 / bank / slice) hit/miss statistics, in
    /// structure order — shows slice load balance and hotspots.
    pub per_structure: Vec<HitMiss>,
    /// Valid L2 entries at the end of the run (all structures).
    pub l2_occupancy: usize,
    /// Page walks performed.
    pub walks: u64,
    /// Walks whose PTE reads left the private caches (LLC or DRAM).
    pub walks_llc_or_mem: u64,
    /// Shootdowns processed.
    pub shootdowns: u64,
    /// Context-switch TLB flushes processed.
    pub flushes: u64,
    /// Chip-wide concurrent-L2-access distribution (Figs 5, 6 left).
    pub chip_concurrency: ConcurrencyBins,
    /// Per-slice concurrent-access distribution, merged over slices
    /// (Fig 6 right).
    pub slice_concurrency: ConcurrencyBins,
    /// End-to-end translation latency of L1-miss accesses.
    pub translation_latency: LatencyRecorder,
    /// Interconnect statistics (None for organizations without a network).
    pub network: Option<NocStats>,
    /// Address-translation energy account.
    pub energy: EnergyAccount,
}

impl SimReport {
    /// Runtime speedup of this run versus a baseline run of the same
    /// workload and work quota.
    ///
    /// # Panics
    ///
    /// Panics if the runs did different amounts of work.
    pub fn speedup_vs(&self, baseline: &SimReport) -> f64 {
        assert_eq!(
            self.accesses, baseline.accesses,
            "speedup requires equal work"
        );
        summary::speedup(baseline.cycles, self.cycles)
    }

    /// Aggregate throughput (completed accesses per kilocycle, summed over
    /// threads' individual finish times) — the Fig 18 "overall throughput"
    /// metric.
    pub fn throughput(&self) -> f64 {
        let per_thread = self.accesses as f64 / self.per_thread_finish.len() as f64;
        self.per_thread_finish
            .iter()
            .map(|&f| per_thread / (f.max(1) as f64) * 1000.0)
            .sum()
    }

    /// Per-application finish times for a mix with `threads_per_app`
    /// consecutive threads per application: the max finish among each
    /// app's threads.
    pub fn app_finish_times(&self, threads_per_app: usize) -> Vec<u64> {
        assert!(threads_per_app > 0, "apps need threads");
        self.per_thread_finish
            .chunks(threads_per_app)
            .map(|c| c.iter().copied().max().unwrap_or(0))
            .collect()
    }

    /// Fraction of private-baseline L2 misses this run eliminated
    /// (the Fig 2 metric).
    pub fn misses_eliminated_vs(&self, baseline: &SimReport) -> f64 {
        let base = baseline.l2.misses() as f64;
        if base == 0.0 {
            0.0
        } else {
            (base - self.l2.misses() as f64).max(0.0) / base * 100.0
        }
    }

    /// Fraction of walks that needed the LLC or DRAM (the paper reports
    /// 70–87 % on the baseline).
    pub fn walk_llc_fraction(&self) -> f64 {
        if self.walks == 0 {
            0.0
        } else {
            self.walks_llc_or_mem as f64 / self.walks as f64
        }
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} on {} cores [{}]: {} accesses in {} cycles",
            self.label, self.cores, self.org_label, self.accesses, self.cycles
        )?;
        writeln!(f, "  L1 TLB: {}  |  L2 TLB: {}", self.l1, self.l2)?;
        writeln!(
            f,
            "  walks: {} ({:.0}% to LLC/DRAM)  shootdowns: {}  flushes: {}",
            self.walks,
            self.walk_llc_fraction() * 100.0,
            self.shootdowns,
            self.flushes
        )?;
        write!(f, "  energy: {}", self.energy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64, misses_hits: (u64, u64), finishes: Vec<u64>) -> SimReport {
        let mut l2 = HitMiss::new();
        for _ in 0..misses_hits.0 {
            l2.miss();
        }
        for _ in 0..misses_hits.1 {
            l2.hit();
        }
        SimReport {
            label: "test".into(),
            org_label: "test".into(),
            cores: finishes.len(),
            cycles,
            accesses: 100 * finishes.len() as u64,
            per_thread_finish: finishes,
            l1: HitMiss::new(),
            l2,
            per_structure: Vec::new(),
            l2_occupancy: 0,
            walks: 10,
            walks_llc_or_mem: 8,
            shootdowns: 0,
            flushes: 0,
            chip_concurrency: ConcurrencyBins::new(),
            slice_concurrency: ConcurrencyBins::new(),
            translation_latency: LatencyRecorder::new(),
            network: None,
            energy: EnergyAccount::default(),
        }
    }

    #[test]
    fn speedup_is_cycle_ratio() {
        let base = report(2000, (10, 90), vec![2000, 1500]);
        let fast = report(1000, (10, 90), vec![1000, 900]);
        assert_eq!(fast.speedup_vs(&base), 2.0);
    }

    #[test]
    fn misses_eliminated_is_a_percentage() {
        let base = report(1000, (100, 0), vec![1000]);
        let shared = report(1000, (25, 75), vec![1000]);
        assert_eq!(shared.misses_eliminated_vs(&base), 75.0);
        // More misses than baseline clamps to zero, not negative.
        let worse = report(1000, (150, 0), vec![1000]);
        assert_eq!(worse.misses_eliminated_vs(&base), 0.0);
    }

    #[test]
    fn throughput_sums_thread_rates() {
        let r = report(1000, (0, 0), vec![1000, 2000]);
        // 100 accesses each: 100/1000*1000 + 100/2000*1000 = 100 + 50.
        assert!((r.throughput() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn app_finish_times_group_threads() {
        let r = report(1000, (0, 0), vec![10, 20, 5, 40]);
        assert_eq!(r.app_finish_times(2), vec![20, 40]);
    }

    #[test]
    fn walk_llc_fraction_handles_zero_walks() {
        let mut r = report(1, (0, 0), vec![1]);
        r.walks = 0;
        r.walks_llc_or_mem = 0;
        assert_eq!(r.walk_llc_fraction(), 0.0);
    }

    #[test]
    fn display_is_multi_line_and_informative() {
        let text = report(1000, (1, 9), vec![1000]).to_string();
        assert!(text.contains("cycles"));
        assert!(text.contains("walks"));
        assert!(text.contains("energy"));
    }
}
