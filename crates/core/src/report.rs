//! Simulation results.

use nocstar_energy::account::EnergyAccount;
use nocstar_json::Json;
use nocstar_noc::NocStats;
use nocstar_stats::counter::HitMiss;
use nocstar_stats::histogram::ConcurrencyBins;
use nocstar_stats::latency::LatencyRecorder;
use nocstar_stats::metrics::{MetricValue, MetricsSnapshot};
use nocstar_stats::summary;
use nocstar_stats::tracing::TraceRecord;
use nocstar_stats::Log2Histogram;
use std::fmt;

use crate::sampling::SamplingReport;

/// Everything measured by one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Workload label.
    pub label: String,
    /// Organization label (`private`, `nocstar`, …).
    pub org_label: String,
    /// Core count.
    pub cores: usize,
    /// Total runtime in cycles (until the last thread finished its quota).
    pub cycles: u64,
    /// Total memory accesses completed.
    pub accesses: u64,
    /// Per-hardware-thread finish times (cycle of each thread's last
    /// access) — the basis for per-application speedups in Fig 18.
    pub per_thread_finish: Vec<u64>,
    /// Combined L1 TLB hit/miss statistics.
    pub l1: HitMiss,
    /// Combined L2 TLB (private / banks / slices) hit/miss statistics.
    pub l2: HitMiss,
    /// Per-structure (private L2 / bank / slice) hit/miss statistics, in
    /// structure order — shows slice load balance and hotspots.
    pub per_structure: Vec<HitMiss>,
    /// Valid L2 entries at the end of the run (all structures).
    pub l2_occupancy: usize,
    /// Page walks performed.
    pub walks: u64,
    /// Walks whose PTE reads left the private caches (LLC or DRAM).
    pub walks_llc_or_mem: u64,
    /// Shootdowns processed.
    pub shootdowns: u64,
    /// Context-switch TLB flushes processed.
    pub flushes: u64,
    /// Chip-wide concurrent-L2-access distribution (Figs 5, 6 left).
    pub chip_concurrency: ConcurrencyBins,
    /// Per-slice concurrent-access distribution, merged over slices
    /// (Fig 6 right).
    pub slice_concurrency: ConcurrencyBins,
    /// End-to-end translation latency of L1-miss accesses.
    pub translation_latency: LatencyRecorder,
    /// Interconnect statistics (None for organizations without a network).
    pub network: Option<NocStats>,
    /// Address-translation energy account.
    pub energy: EnergyAccount,
    /// Detailed metrics snapshot (empty unless `SystemConfig::metrics`).
    pub metrics: MetricsSnapshot,
    /// Retained trace records, oldest first (empty unless
    /// `SystemConfig::trace_capacity` is nonzero).
    pub trace: Vec<TraceRecord>,
    /// Trace records overwritten because the ring buffer was full.
    pub trace_dropped: u64,
    /// Sampled-replay estimates (`SAMPLING.md §4`). `None` for exact runs,
    /// and the `sampling` JSON key is omitted entirely in that case, so
    /// exact-mode golden reports stay byte-identical.
    pub sampling: Option<SamplingReport>,
}

impl SimReport {
    /// Runtime speedup of this run versus a baseline run of the same
    /// workload and work quota.
    ///
    /// # Panics
    ///
    /// Panics if the runs did different amounts of work.
    pub fn speedup_vs(&self, baseline: &SimReport) -> f64 {
        assert_eq!(
            self.accesses, baseline.accesses,
            "speedup requires equal work"
        );
        summary::speedup(baseline.cycles, self.cycles)
    }

    /// Aggregate throughput (completed accesses per kilocycle, summed over
    /// threads' individual finish times) — the Fig 18 "overall throughput"
    /// metric.
    pub fn throughput(&self) -> f64 {
        let per_thread = self.accesses as f64 / self.per_thread_finish.len() as f64;
        self.per_thread_finish
            .iter()
            .map(|&f| per_thread / (f.max(1) as f64) * 1000.0)
            // nocstar-lint: allow(float-accumulation): display-only summary metric reduced in the fixed per_thread_finish order; the golden harness pins its bytes
            .sum()
    }

    /// Per-application finish times for a mix with `threads_per_app`
    /// consecutive threads per application: the max finish among each
    /// app's threads.
    pub fn app_finish_times(&self, threads_per_app: usize) -> Vec<u64> {
        assert!(threads_per_app > 0, "apps need threads");
        self.per_thread_finish
            .chunks(threads_per_app)
            .map(|c| c.iter().copied().max().unwrap_or(0))
            .collect()
    }

    /// Fraction of private-baseline L2 misses this run eliminated
    /// (the Fig 2 metric).
    pub fn misses_eliminated_vs(&self, baseline: &SimReport) -> f64 {
        let base = baseline.l2.misses() as f64;
        if base == 0.0 {
            0.0
        } else {
            (base - self.l2.misses() as f64).max(0.0) / base * 100.0
        }
    }

    /// Fraction of walks that needed the LLC or DRAM (the paper reports
    /// 70–87 % on the baseline).
    pub fn walk_llc_fraction(&self) -> f64 {
        if self.walks == 0 {
            0.0
        } else {
            self.walks_llc_or_mem as f64 / self.walks as f64
        }
    }

    /// Serializes the full report as JSON. Output is deterministic: object
    /// keys keep insertion order, metric samples are name-sorted, and trace
    /// records appear oldest-first — equal runs produce byte-identical
    /// text, which the golden-report and determinism tests rely on.
    pub fn to_json(&self) -> Json {
        let per_structure = Json::Arr(self.per_structure.iter().map(hitmiss_json).collect());
        let metrics = Json::Obj(
            self.metrics
                .samples()
                .iter()
                .map(|s| (s.name.clone(), metric_json(&s.value)))
                .collect(),
        );
        let trace = Json::Arr(self.trace.iter().map(trace_json).collect());
        let network = match &self.network {
            Some(n) => network_json(n, self.cycles),
            None => Json::Null,
        };
        let mut entries = vec![
            ("label", Json::str(self.label.as_str())),
            ("org", Json::str(self.org_label.as_str())),
            ("cores", Json::U64(self.cores as u64)),
            ("cycles", Json::U64(self.cycles)),
            ("accesses", Json::U64(self.accesses)),
            (
                "per_thread_finish",
                Json::Arr(
                    self.per_thread_finish
                        .iter()
                        .map(|&f| Json::U64(f))
                        .collect(),
                ),
            ),
            ("l1", hitmiss_json(&self.l1)),
            ("l2", hitmiss_json(&self.l2)),
            ("per_structure", per_structure),
            ("l2_occupancy", Json::U64(self.l2_occupancy as u64)),
            ("walks", Json::U64(self.walks)),
            ("walks_llc_or_mem", Json::U64(self.walks_llc_or_mem)),
            ("shootdowns", Json::U64(self.shootdowns)),
            ("flushes", Json::U64(self.flushes)),
            ("chip_concurrency", concurrency_json(&self.chip_concurrency)),
            (
                "slice_concurrency",
                concurrency_json(&self.slice_concurrency),
            ),
            (
                "translation_latency",
                latency_json(&self.translation_latency),
            ),
            ("network", network),
            ("energy", energy_json(&self.energy)),
            ("metrics", metrics),
            ("trace", trace),
            ("trace_dropped", Json::U64(self.trace_dropped)),
        ];
        if let Some(sampling) = &self.sampling {
            entries.push(("sampling", sampling.to_json()));
        }
        Json::obj(entries)
    }
}

fn hitmiss_json(h: &HitMiss) -> Json {
    Json::obj(vec![
        ("hits", Json::U64(h.hits())),
        ("misses", Json::U64(h.misses())),
    ])
}

fn latency_json(l: &LatencyRecorder) -> Json {
    Json::obj(vec![
        ("count", Json::U64(l.count())),
        ("min", Json::U64(l.min().value())),
        ("mean", Json::F64(l.mean())),
        ("max", Json::U64(l.max().value())),
    ])
}

/// Log2 histograms serialize sparsely: `[bucket_index, count]` pairs for
/// the nonzero buckets only (bucket 0 holds zero-valued samples; bucket
/// `k` holds samples in `[2^(k-1), 2^k)`).
fn histogram_json(h: &Log2Histogram) -> Json {
    let buckets = h
        .buckets()
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| Json::Arr(vec![Json::U64(i as u64), Json::U64(c)]))
        .collect();
    Json::obj(vec![
        ("count", Json::U64(h.count())),
        ("sum", Json::U64(h.sum())),
        ("buckets", Json::Arr(buckets)),
    ])
}

fn metric_json(v: &MetricValue) -> Json {
    match v {
        MetricValue::Counter(c) => Json::obj(vec![("counter", Json::U64(*c))]),
        MetricValue::Gauge(g) => Json::obj(vec![("gauge", Json::U64(*g))]),
        MetricValue::Histogram(h) => Json::obj(vec![("histogram", histogram_json(h))]),
    }
}

fn concurrency_json(c: &ConcurrencyBins) -> Json {
    Json::obj(vec![
        ("total", Json::U64(c.total())),
        (
            "fractions",
            Json::Arr(c.fractions().into_iter().map(Json::F64).collect()),
        ),
    ])
}

fn network_json(n: &NocStats, window: u64) -> Json {
    Json::obj(vec![
        ("delivered", Json::U64(n.delivered)),
        ("no_contention", Json::U64(n.no_contention)),
        ("retries", Json::U64(n.retries)),
        ("grants", Json::U64(n.grants)),
        ("rotations", Json::U64(n.rotations)),
        ("latency", latency_json(&n.latency)),
        (
            "link_busy",
            Json::Arr(n.link_busy.iter().map(|&b| Json::U64(b)).collect()),
        ),
        (
            "link_utilization",
            Json::Arr(
                n.link_utilization(window)
                    .into_iter()
                    .map(Json::F64)
                    .collect(),
            ),
        ),
    ])
}

fn energy_json(e: &EnergyAccount) -> Json {
    Json::obj(vec![
        ("l1_tlb_pj", Json::F64(e.l1_tlb_pj)),
        ("l2_tlb_pj", Json::F64(e.l2_tlb_pj)),
        ("noc_pj", Json::F64(e.noc_pj)),
        ("walk_pj", Json::F64(e.walk_pj)),
        ("static_pj", Json::F64(e.static_pj)),
        ("total_pj", Json::F64(e.total_pj())),
    ])
}

fn trace_json(r: &TraceRecord) -> Json {
    Json::Arr(vec![
        Json::U64(r.cycle),
        Json::U64(r.component as u64),
        Json::U64(r.kind as u64),
        Json::U64(r.a),
        Json::U64(r.b),
    ])
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} on {} cores [{}]: {} accesses in {} cycles",
            self.label, self.cores, self.org_label, self.accesses, self.cycles
        )?;
        writeln!(f, "  L1 TLB: {}  |  L2 TLB: {}", self.l1, self.l2)?;
        writeln!(
            f,
            "  walks: {} ({:.0}% to LLC/DRAM)  shootdowns: {}  flushes: {}",
            self.walks,
            self.walk_llc_fraction() * 100.0,
            self.shootdowns,
            self.flushes
        )?;
        write!(f, "  energy: {}", self.energy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64, misses_hits: (u64, u64), finishes: Vec<u64>) -> SimReport {
        let mut l2 = HitMiss::new();
        for _ in 0..misses_hits.0 {
            l2.miss();
        }
        for _ in 0..misses_hits.1 {
            l2.hit();
        }
        SimReport {
            label: "test".into(),
            org_label: "test".into(),
            cores: finishes.len(),
            cycles,
            accesses: 100 * finishes.len() as u64,
            per_thread_finish: finishes,
            l1: HitMiss::new(),
            l2,
            per_structure: Vec::new(),
            l2_occupancy: 0,
            walks: 10,
            walks_llc_or_mem: 8,
            shootdowns: 0,
            flushes: 0,
            chip_concurrency: ConcurrencyBins::new(),
            slice_concurrency: ConcurrencyBins::new(),
            translation_latency: LatencyRecorder::new(),
            network: None,
            energy: EnergyAccount::default(),
            metrics: MetricsSnapshot::default(),
            trace: Vec::new(),
            trace_dropped: 0,
            sampling: None,
        }
    }

    #[test]
    fn speedup_is_cycle_ratio() {
        let base = report(2000, (10, 90), vec![2000, 1500]);
        let fast = report(1000, (10, 90), vec![1000, 900]);
        assert_eq!(fast.speedup_vs(&base), 2.0);
    }

    #[test]
    fn misses_eliminated_is_a_percentage() {
        let base = report(1000, (100, 0), vec![1000]);
        let shared = report(1000, (25, 75), vec![1000]);
        assert_eq!(shared.misses_eliminated_vs(&base), 75.0);
        // More misses than baseline clamps to zero, not negative.
        let worse = report(1000, (150, 0), vec![1000]);
        assert_eq!(worse.misses_eliminated_vs(&base), 0.0);
    }

    #[test]
    fn throughput_sums_thread_rates() {
        let r = report(1000, (0, 0), vec![1000, 2000]);
        // 100 accesses each: 100/1000*1000 + 100/2000*1000 = 100 + 50.
        assert!((r.throughput() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn app_finish_times_group_threads() {
        let r = report(1000, (0, 0), vec![10, 20, 5, 40]);
        assert_eq!(r.app_finish_times(2), vec![20, 40]);
    }

    #[test]
    fn walk_llc_fraction_handles_zero_walks() {
        let mut r = report(1, (0, 0), vec![1]);
        r.walks = 0;
        r.walks_llc_or_mem = 0;
        assert_eq!(r.walk_llc_fraction(), 0.0);
    }

    #[test]
    fn display_is_multi_line_and_informative() {
        let text = report(1000, (1, 9), vec![1000]).to_string();
        assert!(text.contains("cycles"));
        assert!(text.contains("walks"));
        assert!(text.contains("energy"));
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let r = report(1000, (1, 9), vec![1000, 900]);
        let json = r.to_json();
        let text = json.to_string();
        let parsed = Json::parse(&text).expect("valid JSON");
        // Numeric types may narrow on parse (0.0 reads back as 0), so the
        // round-trip invariant is on the serialized text.
        assert_eq!(parsed.to_string(), text);
        assert_eq!(parsed.get("cycles").and_then(Json::as_u64), Some(1000));
        assert_eq!(
            parsed
                .get("l2")
                .and_then(|l| l.get("misses"))
                .and_then(Json::as_u64),
            Some(1)
        );
        // No network: the key is present but null.
        assert_eq!(parsed.get("network"), Some(&Json::Null));
        // Exact runs omit the sampling section entirely (golden stability).
        assert!(parsed.get("sampling").is_none());
    }

    #[test]
    fn json_serializes_metrics_and_trace() {
        let mut r = report(500, (0, 0), vec![500]);
        let mut reg = nocstar_stats::metrics::MetricsRegistry::enabled();
        let c = reg.counter("core.0.stall.walk_cycles");
        reg.add(c, 42);
        let h = reg.histogram("mem.walk_latency_cycles");
        reg.observe(h, 9);
        r.metrics = reg.snapshot();
        r.trace = vec![TraceRecord {
            cycle: 7,
            component: 3,
            kind: 1,
            a: 0x1000,
            b: 0,
        }];
        r.trace_dropped = 2;
        let json = r.to_json();
        let m = json.get("metrics").expect("metrics object");
        assert_eq!(
            m.get("core.0.stall.walk_cycles")
                .and_then(|v| v.get("counter"))
                .and_then(Json::as_u64),
            Some(42)
        );
        let hist = m
            .get("mem.walk_latency_cycles")
            .and_then(|v| v.get("histogram"))
            .expect("histogram");
        assert_eq!(hist.get("count").and_then(Json::as_u64), Some(1));
        let trace = json.get("trace").and_then(Json::as_array).expect("trace");
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].as_array().unwrap()[0].as_u64(), Some(7));
        assert_eq!(json.get("trace_dropped").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn identical_reports_serialize_identically() {
        let a = report(1000, (5, 5), vec![1000, 800]).to_json().to_string();
        let b = report(1000, (5, 5), vec![1000, 800]).to_json().to_string();
        assert_eq!(a, b);
    }
}
