//! The event-driven full-system simulation.
//!
//! One [`Simulation`] runs one configuration over one workload assignment
//! for a fixed number of memory accesses per hardware thread, and produces
//! a [`SimReport`]. Time advances event-to-event; interconnect arbitration
//! is resolved cycle-exactly whenever messages are in flight (see
//! `nocstar-noc`), and skipped entirely while the network is idle.

use crate::assignment::WorkloadAssignment;
use crate::config::{MonolithicNet, SystemConfig, TlbOrg, WalkPolicy};
use crate::event::{Event, EventQueue};
use crate::network::NetworkModel;
use crate::org::OrgState;
use crate::report::SimReport;
use crate::sampling::{self, SamplingReport, WindowSample};
use nocstar_energy::account::EnergyAccount;
use nocstar_energy::model::{self, NocDesign};
use nocstar_faults::{DiagSnapshot, FaultPlan, RecoveryPolicy, SimError};
use nocstar_mem::hierarchy::{MemoryConfig, MemorySystem, ServicedBy, SharedTables};
use nocstar_mem::walker::WalkLatency;
use nocstar_noc::hier::HierNoc;
use nocstar_noc::mesh::MeshNoc;
use nocstar_noc::message::{Delivery, Message, MsgKind};
use nocstar_noc::smart::SmartNoc;
use nocstar_noc::NocStats;
use nocstar_stats::counter::{Counter, HitMiss};
use nocstar_stats::histogram::ConcurrencyBins;
use nocstar_stats::latency::LatencyRecorder;
use nocstar_stats::metrics::{CounterId, Log2Histogram, MetricsRegistry};
use nocstar_stats::tracing::{TraceRecord, TraceSink};
use nocstar_tlb::entry::TlbEntry;
use nocstar_tlb::l1::L1Tlb;
use nocstar_tlb::shootdown::Invalidation;
use nocstar_types::time::{Cycle, Cycles};
use nocstar_types::{Asid, CoreId, MeshShape, PageSize, VirtAddr, VirtPageNum};
use nocstar_workloads::sample::SampleSpec;
use nocstar_workloads::trace::{MemAccess, TraceEvent, TraceSource};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};

/// Cycles a thread loses to a context-switch trap.
const CTX_SWITCH_COST: Cycles = Cycles::new(200);
/// Cycles the initiating thread spends in the OS for one shootdown batch.
const SHOOTDOWN_COST: Cycles = Cycles::new(50);
/// Out-of-order cores overlap most data-miss latency with independent
/// work; translation latency, in contrast, serializes in front of the
/// access (paper §I). Data accesses therefore charge their L1 latency in
/// full and only 1/8 of any additional miss latency.
const DATA_MLP_SHIFT: u32 = 3;

/// Pipeline-replay penalty charged once per L2 TLB miss, on top of the
/// page-walk latency. An out-of-order core squashes and replays the
/// instructions dependent on a translation miss; prior work measures this
/// replay cost as a first-order component of the "address translation
/// wall" (Bhattacharjee, MICRO Top Picks 2018). Without it, miss-rate
/// differences between organizations under-contribute to runtime relative
/// to the paper's Table III sensitivity results.
const WALK_REPLAY_PENALTY: Cycles = Cycles::new(40);

/// Event-kind ids for the [`TraceRecord`]s the simulation emits when
/// [`SystemConfig::trace_capacity`] is nonzero. The component id is the
/// requesting core's index, except for [`trace_kind::SLICE_DONE`], whose
/// component is [`SLICE_COMPONENT_BASE`] plus the structure index.
pub mod trace_kind {
    /// An access missed the L1 TLB and entered the L2 path
    /// (`a` = virtual address, `b` = hardware-thread index).
    pub const ISSUE: u16 = 1;
    /// The home structure's SRAM lookup finished
    /// (`a` = virtual address, `b` = 1 on a slice hit, 0 on a miss).
    pub const SLICE_DONE: u16 = 2;
    /// A page-table walk (plus replay penalty) finished
    /// (`a` = virtual address, `b` = walk cycles charged).
    pub const WALK_DONE: u16 = 3;
    /// The translation reached the requesting core
    /// (`a` = virtual address, `b` = end-to-end translation cycles).
    pub const TRANSLATION_DONE: u16 = 4;
    /// An injected fault acted on this component
    /// (`a` = fault class: 1 slice-offline miss, 2 walk-latency spike,
    /// 3 storm-forced relay; `b` = class detail, e.g. the multiplier).
    pub const FAULT: u16 = 5;
}

/// Trace component ids at or above this value denote L2 TLB structures
/// (`SLICE_COMPONENT_BASE + structure index`); below it, core indices.
pub const SLICE_COMPONENT_BASE: u32 = 1 << 16;

/// Iterations the event loop may spend on one simulated cycle before the
/// livelock watchdog fires: the legal same-cycle work (events due now plus
/// one network advance) is bounded by the transaction population, which is
/// itself bounded by the thread count — far below this.
const SAME_CYCLE_SPIN_LIMIT: u64 = 100_000;

/// Trace events per batch on a domain feed channel. Batching amortizes the
/// channel transfer: one send/recv pair moves `PRE_BATCH` precomputed
/// events.
const PRE_BATCH: usize = 512;

/// Batches a domain feed channel buffers before the worker backs off. With
/// [`PRE_BATCH`] this bounds each thread's run-ahead to a couple of
/// thousand trace events (tens of kilobytes per thread) — deep enough that
/// a worker granted the CPU fills every pipe in one burst and the commit
/// loop then runs unpreempted for a long stretch, which is what makes the
/// scheme cheap even on hosts with few cores.
const PIPE_BATCHES: usize = 2;

/// One trace event with everything the commit loop would otherwise have to
/// compute on its own critical path: the source's address space, the
/// workload's backing page size, and whether the page was already mapped.
///
/// All three are pure functions of the source and the (monotone) page
/// tables, so a feed worker can compute them ahead of commit time without
/// changing what the sequential loop would have observed — see
/// [`Simulation::run_domains_parallel`] for the argument.
#[derive(Debug, Clone, Copy)]
struct PreEvent {
    ev: TraceEvent,
    asid: Asid,
    /// The backing page size for an access (`None` on the live path, where
    /// it is computed lazily only when the issue path needs it).
    backing: Option<PageSize>,
    /// `Some(true)` when the page was observed mapped at precompute time.
    /// Mapped-ness is monotone ([`SharedTables`]), so `Some(true)` is
    /// trusted at commit; anything else is re-checked live.
    mapped: Option<bool>,
}

/// Where a hardware thread's trace events come from: the source itself
/// (sequential runs), or a channel fed by the domain's worker thread.
enum Feed {
    Live(Box<dyn TraceSource>),
    Piped {
        rx: Receiver<Vec<PreEvent>>,
        /// The batch currently being drained, consumed from `pos` (the
        /// batch is taken over wholesale rather than copied event-by-event
        /// into a deque).
        buf: Vec<PreEvent>,
        pos: usize,
        /// The domain worker filling `rx`, unparked before any blocking
        /// receive. Workers park indefinitely once every pipe is full, so
        /// this unpark is what wakes them back up on demand.
        worker: Option<std::thread::Thread>,
    },
}

/// One hardware thread's feed state on a domain worker: its trace source
/// plus the batch that could not be sent yet (its channel was full).
struct FeedThread {
    src: Box<dyn TraceSource>,
    tx: SyncSender<Vec<PreEvent>>,
    ready: Option<Vec<PreEvent>>,
}

/// Raises a stop flag and unparks every feed worker when dropped —
/// including during unwinding, so workers (which park indefinitely when
/// their pipes are full) are told to exit before the enclosing thread
/// scope joins them.
struct StopOnDrop<'a> {
    stop: &'a AtomicBool,
    workers: &'a [std::thread::Thread],
}

impl Drop for StopOnDrop<'_> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        for w in self.workers {
            w.unpark();
        }
    }
}

/// Precomputes one trace event from `src`. For accesses, probes the shared
/// page tables for mapped-ness — memoized in `seen_mapped`, which is sound
/// because mappings are monotone: once a page is observed mapped it stays
/// mapped for the rest of the run.
fn pre_event(
    src: &mut dyn TraceSource,
    tables: &SharedTables,
    seen_mapped: &mut BTreeSet<(u16, u64)>,
) -> PreEvent {
    let ev = src.next_event();
    let asid = src.asid();
    match ev {
        TraceEvent::Access(a) => {
            let key = (asid.value(), a.va.value() >> 12);
            let mapped = seen_mapped.contains(&key) || {
                let probed = tables.is_mapped(asid, a.va);
                if probed {
                    seen_mapped.insert(key);
                }
                probed
            };
            PreEvent {
                ev,
                asid,
                backing: Some(src.backing(a.va)),
                mapped: Some(mapped),
            }
        }
        _ => PreEvent {
            ev,
            asid,
            backing: None,
            mapped: None,
        },
    }
}

/// The body of one domain's feed worker: round-robins over the domain's
/// hardware threads, precomputing batches of trace events and pushing them
/// down each thread's channel. Never blocks on a full channel (a finished
/// thread stops consuming, so a blocking send could wedge the worker);
/// instead the unsent batch is parked in [`FeedThread::ready`] and retried.
/// Exits when every channel has disconnected or `stop` is raised.
fn feed_domain(mut threads: Vec<FeedThread>, tables: SharedTables, stop: &AtomicBool) {
    let mut seen_mapped: BTreeSet<(u16, u64)> = BTreeSet::new();
    while !threads.is_empty() && !stop.load(Ordering::Acquire) {
        let mut progressed = false;
        threads.retain_mut(|th| {
            let batch = match th.ready.take() {
                Some(batch) => batch,
                None => {
                    let mut batch = Vec::with_capacity(PRE_BATCH);
                    for _ in 0..PRE_BATCH {
                        batch.push(pre_event(th.src.as_mut(), &tables, &mut seen_mapped));
                    }
                    progressed = true;
                    batch
                }
            };
            match th.tx.try_send(batch) {
                Ok(()) => {
                    progressed = true;
                    true
                }
                Err(TrySendError::Full(batch)) => {
                    th.ready = Some(batch);
                    true
                }
                // Receiver gone: the run is over (or unwinding) and this
                // thread needs no more events.
                Err(TrySendError::Disconnected(_)) => false,
            }
        });
        if !progressed {
            // Every pipe is full and every batch is stashed: park until
            // the commit loop drains something and unparks us (or the run
            // ends — `StopOnDrop` unparks on the way out).
            std::thread::park();
        }
    }
}

/// A structured simulation failure: the typed error plus the partial
/// report harvested from whatever the run completed before aborting.
///
/// Returned (boxed — the report is large) by [`Simulation::try_run`] and
/// [`Simulation::try_run_measured`]. The partial report's `cycles` and
/// per-thread counters cover the work finished before the abort, so a
/// budget-limited sweep can still plot what it measured.
#[derive(Debug)]
pub struct SimAbort {
    /// Why the run aborted.
    pub error: SimError,
    /// Everything measured up to the abort.
    pub partial: SimReport,
}

impl std::fmt::Display for SimAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.error.fmt(f)
    }
}

impl std::error::Error for SimAbort {}

#[derive(Debug, Clone, Copy)]
struct LookupTx {
    thread: usize,
    requester: CoreId,
    va: VirtAddr,
    asid: Asid,
    vpn: VirtPageNum,
    is_write: bool,
    issued_at: Cycle,
    home_idx: usize,
    home_tile: CoreId,
    /// The translation, once known (slice hit or completed walk).
    entry: Option<TlbEntry>,
    /// Whether the slice lookup missed and a walk resolved it.
    walked: bool,
    /// Whether the slice-level concurrency trackers were closed.
    tracker_closed: bool,
    /// When the home structure's lookup result became available — the
    /// boundary between slice time and walk/response time in the per-core
    /// stall breakdown.
    slice_done_at: Cycle,
    /// Walk cycles (including the replay penalty) charged to this access.
    walk_cycles: u64,
    /// The static home before any recovery redirect (equals `home_idx`
    /// unless `rehomed`).
    orig_home_idx: usize,
    /// The static home was offline and this lookup was redirected to a
    /// backup slice by the recovery policy.
    rehomed: bool,
    /// The static home was offline and no redirect applied (open-loop or
    /// disconnected): the translation was served degraded (walk path).
    degraded: bool,
}

/// The slice that will actually service a lookup, after any re-homing.
#[derive(Debug, Clone, Copy)]
struct ResolvedHome {
    idx: usize,
    tile: CoreId,
    orig_idx: usize,
    rehomed: bool,
    degraded: bool,
}

/// An active re-homing window: a slice's set range served by a backup
/// slice while the home is offline.
#[derive(Debug, Clone)]
struct Rehome {
    backup_idx: usize,
    /// When the offline home was detected and the redirect installed.
    since: Cycle,
    /// Whether a redirected translation has completed yet (the first one
    /// defines this activation's detect→recovered latency).
    first_served: bool,
    /// Entries inserted into the backup during the window; invalidated on
    /// home-back so no stale copy outlives the redirect (coherent handoff).
    inserted: BTreeSet<(Asid, VirtPageNum)>,
}

impl LookupTx {
    /// The home this lookup resolved to at issue time, as a
    /// [`ResolvedHome`] (for insert-tracking at walk completion).
    fn resolved_home(&self) -> ResolvedHome {
        ResolvedHome {
            idx: self.home_idx,
            tile: self.home_tile,
            orig_idx: self.orig_home_idx,
            rehomed: self.rehomed,
            degraded: self.degraded,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum TxState {
    Lookup(LookupTx),
    Insert(TlbEntry),
    Inval {
        inv: Invalidation,
        home_idx: usize,
        /// Next hop: false = travelling to the leader (dropped there — the
        /// leader relays on its own), true = travelling to the home slice.
        at_leader: bool,
    },
}

/// An access waiting for its issue event, with the trace-source facts
/// captured when it was pulled from the feed.
#[derive(Debug, Clone, Copy)]
struct PendingAccess {
    access: MemAccess,
    asid: Asid,
    backing: Option<PageSize>,
    mapped: Option<bool>,
}

/// Per-hardware-thread progress.
#[derive(Debug, Clone, Copy)]
struct ThreadState {
    core: CoreId,
    pending: Option<PendingAccess>,
    accesses_done: u64,
    finish_time: Cycle,
    finished: bool,
}

/// Whether the driver replays every access cycle-accurately or alternates
/// functional fast-forward with measurement windows (`SAMPLING.md §1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunMode {
    Exact,
    Sampled,
}

/// Live state of a sampled run: the placement spec, the replayed span, and
/// the samples harvested so far.
struct SamplingState {
    spec: SampleSpec,
    /// Total trace span, in accesses per thread.
    span: u64,
    /// Accesses (all threads) consumed functionally so far.
    ff_accesses: u64,
    /// Per-thread measured cycles accumulated over completed windows.
    thread_measured: Vec<u64>,
    windows: Vec<WindowSample>,
}

/// One configured system ready to run one workload.
pub struct Simulation {
    config: SystemConfig,
    mesh: MeshShape,
    mem: MemorySystem,
    l1s: Vec<L1Tlb>,
    org: OrgState,
    net: NetworkModel,
    feeds: Vec<Feed>,
    threads: Vec<ThreadState>,
    /// Event-queue shards / feed workers (1 = sequential run). Clamped to
    /// the core count so every domain owns at least one tile.
    domains: usize,
    walker_free: Vec<Cycle>,
    events: EventQueue,
    txs: BTreeMap<u64, TxState>,
    next_tx: u64,
    now: Cycle,
    target: u64,
    warm_target: u64,
    warm_crossed: usize,
    warm_cross_time: Vec<Cycle>,
    completed_threads: usize,
    last_completion: Cycle,
    label: String,
    // Fault injection (empty plan = zero-cost fast paths everywhere).
    faults: FaultPlan,
    /// Closed-loop recovery policy (disabled = open-loop behaviour, and
    /// every recovery hook short-circuits to the static path).
    recovery: RecoveryPolicy,
    /// Active re-homing windows, keyed by the offline home's index.
    rehomed: BTreeMap<usize, Rehome>,
    /// Simulated time of the last completed memory access, chip-wide —
    /// the forward-progress marker the livelock watchdog measures against.
    last_progress: Cycle,
    /// `Some` while running in sampled mode (`SAMPLING.md`); exact runs
    /// never allocate it, so their behaviour and reports are untouched.
    sampling: Option<SamplingState>,
    // Statistics.
    energy: EnergyAccount,
    energy_design: Option<NocDesign>,
    translation_latency: LatencyRecorder,
    walks: Counter,
    walks_llc_or_mem: Counter,
    shootdowns: Counter,
    flushes: Counter,
    fault_slice_misses: Counter,
    fault_walk_spikes: Counter,
    fault_storm_relays: Counter,
    // Recovery accounting (harvested only when a policy and plan are set).
    recovered_translations: Counter,
    degraded_translations: Counter,
    rehome_activations: Counter,
    rehome_homebacks: Counter,
    rehome_handoff_entries: Log2Histogram,
    detect_to_recovered: Log2Histogram,
    // Observability (no-ops unless enabled in the config).
    metrics: MetricsRegistry,
    trace: TraceSink,
    /// Per-core cycles spent waiting on the home structure's lookup.
    stall_slice: Vec<CounterId>,
    /// Per-core cycles spent waiting on page walks (incl. replay).
    stall_walk: Vec<CounterId>,
    /// Per-core cycles spent on everything else (interconnect transit,
    /// queueing at remote ports).
    stall_response: Vec<CounterId>,
}

impl Simulation {
    /// Builds a simulation of `config` running `workload`.
    ///
    /// # Panics
    ///
    /// Panics if the workload does not provide one trace per hardware
    /// thread, or the configuration is invalid.
    pub fn new(config: SystemConfig, workload: WorkloadAssignment) -> Self {
        config.validate();
        assert_eq!(
            workload.len(),
            config.threads(),
            "workload must cover every hardware thread"
        );
        let mesh = config.mesh();
        let org = OrgState::new(&config);
        let net = match config.org {
            TlbOrg::Private { .. } | TlbOrg::IdealShared { .. } => NetworkModel::None,
            TlbOrg::Distributed { .. } => NetworkModel::Mesh(MeshNoc::contention_free(mesh)),
            TlbOrg::Monolithic { net, .. } => match net {
                MonolithicNet::Mesh => NetworkModel::Mesh(MeshNoc::contention_free(mesh)),
                MonolithicNet::Smart(hpc) => NetworkModel::Smart(SmartNoc::new(mesh, hpc)),
                MonolithicNet::Ideal => NetworkModel::None,
            },
            TlbOrg::Nocstar {
                hpc_max,
                acquire,
                ideal_fabric,
                ..
            } => NetworkModel::nocstar(mesh, hpc_max, acquire, ideal_fabric),
            TlbOrg::Hier {
                cluster_size,
                intra,
                inter,
                ..
            } => NetworkModel::Hier(HierNoc::new(config.cores, cluster_size, intra, inter)),
        };
        let energy_design = match config.org {
            TlbOrg::Monolithic {
                entries_per_core, ..
            } => Some(NocDesign::Monolithic {
                total_entries: entries_per_core * config.cores,
            }),
            TlbOrg::Distributed { slice_entries } | TlbOrg::Hier { slice_entries, .. } => {
                Some(NocDesign::Distributed { slice_entries })
            }
            TlbOrg::Nocstar { slice_entries, .. } => Some(NocDesign::Nocstar { slice_entries }),
            _ => None,
        };
        let label = workload.label().to_string();
        let l1_config = config.l1_config();
        let mut metrics = if config.metrics {
            MetricsRegistry::enabled()
        } else {
            MetricsRegistry::disabled()
        };
        let stall_slice = (0..config.cores)
            .map(|c| metrics.counter(&format!("core.{c}.stall.slice_cycles")))
            .collect();
        let stall_walk = (0..config.cores)
            .map(|c| metrics.counter(&format!("core.{c}.stall.walk_cycles")))
            .collect();
        let stall_response = (0..config.cores)
            .map(|c| metrics.counter(&format!("core.{c}.stall.response_cycles")))
            .collect();
        let trace = if config.trace_capacity > 0 {
            TraceSink::bounded(config.trace_capacity)
        } else {
            TraceSink::disabled()
        };
        let domains = config.parallel_domains.min(config.cores);
        Self {
            mesh,
            mem: MemorySystem::new(MemoryConfig::haswell(config.cores)),
            l1s: (0..config.cores).map(|_| L1Tlb::new(l1_config)).collect(),
            org,
            net,
            feeds: workload.into_traces().into_iter().map(Feed::Live).collect(),
            threads: vec![
                ThreadState {
                    core: CoreId::new(0),
                    pending: None,
                    accesses_done: 0,
                    finish_time: Cycle::ZERO,
                    finished: false,
                };
                config.threads()
            ],
            domains,
            walker_free: vec![Cycle::ZERO; config.cores],
            events: EventQueue::sharded(domains),
            txs: BTreeMap::new(),
            next_tx: 0,
            now: Cycle::ZERO,
            target: 0,
            warm_target: 0,
            warm_crossed: 0,
            warm_cross_time: vec![Cycle::ZERO; config.threads()],
            completed_threads: 0,
            last_completion: Cycle::ZERO,
            label,
            faults: FaultPlan::default(),
            recovery: RecoveryPolicy::default(),
            rehomed: BTreeMap::new(),
            last_progress: Cycle::ZERO,
            sampling: None,
            energy: EnergyAccount::default(),
            energy_design,
            translation_latency: LatencyRecorder::new(),
            walks: Counter::new(),
            walks_llc_or_mem: Counter::new(),
            shootdowns: Counter::new(),
            flushes: Counter::new(),
            fault_slice_misses: Counter::new(),
            fault_walk_spikes: Counter::new(),
            fault_storm_relays: Counter::new(),
            recovered_translations: Counter::new(),
            degraded_translations: Counter::new(),
            rehome_activations: Counter::new(),
            rehome_homebacks: Counter::new(),
            rehome_handoff_entries: Log2Histogram::new(),
            detect_to_recovered: Log2Histogram::new(),
            metrics,
            trace,
            stall_slice,
            stall_walk,
            stall_response,
            config,
        }
    }

    fn core_of(&self, thread: usize) -> CoreId {
        CoreId::new(thread / self.config.smt)
    }

    /// The domain owning a tile: cores are split into `domains` contiguous
    /// ranges, so domain boundaries follow the physical layout and the
    /// partition is independent of how many domains actually run.
    fn domain_of_core(&self, core: CoreId) -> usize {
        core.index() * self.domains / self.config.cores
    }

    fn domain_of_thread(&self, thread: usize) -> usize {
        self.domain_of_core(self.core_of(thread))
    }

    /// Installs a deterministic fault plan: link outages/degradations and
    /// setup denials act inside the interconnect model, walk-latency
    /// spikes, slice-offline windows and shootdown storms act here in the
    /// simulation loop. An empty plan is free — every fault hook
    /// short-circuits on [`FaultPlan::is_empty`], so a run with an empty
    /// plan is cycle-identical to one that never called this.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.net.install_faults(plan.clone());
        self.faults = plan;
        self
    }

    /// Installs a closed-loop recovery policy. Re-routing, escalating
    /// retry and gateway failover act inside the interconnect models;
    /// slice re-homing acts here in the simulation loop. A disabled
    /// policy — or any policy without a non-empty fault plan — changes
    /// nothing: every recovery hook short-circuits, so such runs stay
    /// cycle-identical to ones that never called this.
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.net.install_recovery(policy);
        self.recovery = policy;
        self
    }

    /// Runs until every hardware thread completes `accesses_per_thread`
    /// memory accesses; returns the report.
    ///
    /// # Panics
    ///
    /// Panics on any structured simulation failure (deadlock, livelock,
    /// exceeded cycle budget, protocol violation) — use
    /// [`try_run`](Self::try_run) to handle these as values.
    pub fn run(self, accesses_per_thread: u64) -> SimReport {
        self.run_measured(0, accesses_per_thread)
    }

    /// Runs a warmup of `warmup` accesses per thread (populating TLBs,
    /// caches and page tables), resets all statistics once every thread
    /// has crossed the warmup quota, then measures `measure` further
    /// accesses per thread. Per-thread runtimes cover exactly the measured
    /// quota (from each thread's own warmup crossing to its finish), so
    /// speedups compare equal work.
    ///
    /// # Panics
    ///
    /// As [`run`](Self::run); additionally if `measure` is zero.
    pub fn run_measured(self, warmup: u64, measure: u64) -> SimReport {
        match self.try_run_measured(warmup, measure) {
            Ok(report) => report,
            Err(abort) => panic!("{}", abort.error),
        }
    }

    /// [`run`](Self::run), returning structured errors instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns a [`SimAbort`] (typed [`SimError`] + partial report) when
    /// the run deadlocks, livelocks, exhausts
    /// [`SystemConfig::max_cycles`], or violates a protocol invariant.
    pub fn try_run(self, accesses_per_thread: u64) -> Result<SimReport, Box<SimAbort>> {
        self.try_run_measured(0, accesses_per_thread)
    }

    /// [`run_measured`](Self::run_measured), returning structured errors
    /// instead of panicking.
    ///
    /// # Errors
    ///
    /// As [`try_run`](Self::try_run).
    ///
    /// # Panics
    ///
    /// Panics if `measure` is zero.
    pub fn try_run_measured(
        mut self,
        warmup: u64,
        measure: u64,
    ) -> Result<SimReport, Box<SimAbort>> {
        assert!(measure > 0, "need a nonzero measured quota");
        let accesses_per_thread = warmup + measure;
        self.warm_target = warmup;
        self.warm_crossed = if warmup == 0 { self.threads.len() } else { 0 };
        self.target = accesses_per_thread;
        let result = if self.domains > 1 {
            self.run_domains_parallel(RunMode::Exact)
        } else {
            self.start_threads_and_event_loop()
        };
        if let Err(error) = result {
            let partial = self.finish();
            return Err(Box::new(SimAbort {
                error: *error,
                partial,
            }));
        }
        Ok(self.finish())
    }

    /// Sampled fast-forward replay over a span of `total` accesses per
    /// thread (`SAMPLING.md`): functional fast-forward between the
    /// measurement windows `spec` places, a detailed warmup ramp in front
    /// of each window whose statistics are discarded, and per-window
    /// estimates combined into whole-trace confidence intervals in the
    /// report's `sampling` section.
    ///
    /// # Panics
    ///
    /// As [`try_run_sampled`](Self::try_run_sampled), plus on any
    /// structured simulation failure inside a measurement window.
    pub fn run_sampled(self, spec: SampleSpec, total: u64) -> SimReport {
        match self.try_run_sampled(spec, total) {
            Ok(report) => report,
            Err(abort) => panic!("{}", abort.error),
        }
    }

    /// [`run_sampled`](Self::run_sampled), returning structured errors
    /// instead of panicking. A [`SimAbort`]'s partial report covers the
    /// windows completed before the failure.
    ///
    /// # Errors
    ///
    /// As [`try_run`](Self::try_run).
    ///
    /// # Panics
    ///
    /// Panics if `spec` places no measurement window inside `total`
    /// accesses per thread, or if a fault plan or recovery policy is
    /// installed — fault windows are cycle-based and fast-forward does not
    /// advance cycles, so sampled replay cannot honour them
    /// (`SAMPLING.md §7`).
    pub fn try_run_sampled(
        mut self,
        spec: SampleSpec,
        total: u64,
    ) -> Result<SimReport, Box<SimAbort>> {
        assert!(
            self.faults.is_empty() && !self.recovery.is_enabled(),
            "sampled replay is incompatible with fault plans and recovery: \
             fault windows are cycle-based and fast-forward does not advance cycles"
        );
        assert!(
            spec.windows(total) >= 1,
            "sample spec {spec} places no measurement window in {total} accesses per thread"
        );
        self.sampling = Some(SamplingState {
            spec,
            span: total,
            ff_accesses: 0,
            thread_measured: vec![0; self.threads.len()],
            windows: Vec::new(),
        });
        let result = if self.domains > 1 {
            self.run_domains_parallel(RunMode::Sampled)
        } else {
            self.sampled_loop()
        };
        if let Err(error) = result {
            let partial = self.finish();
            return Err(Box::new(SimAbort {
                error: *error,
                partial,
            }));
        }
        Ok(self.finish())
    }

    /// Seeds every hardware thread's first event and runs the event loop.
    fn start_threads_and_event_loop(&mut self) -> Result<(), Box<SimError>> {
        for t in 0..self.threads.len() {
            self.threads[t].core = self.core_of(t);
            self.thread_next(t);
        }
        self.event_loop()
    }

    /// The epoch-parallel driver: *parallel lookahead, sequential commit*.
    ///
    /// Each domain's trace sources move onto a worker thread that runs
    /// ahead of simulated time, precomputing [`PreEvent`]s (next trace
    /// event, address space, backing page size, mapped-ness probe) and
    /// streaming them to the commit loop through a bounded channel. The
    /// commit loop — this thread — replays the exact sequential event
    /// schedule and performs *all* order-sensitive mutation, so the report
    /// is byte-identical to a sequential run by construction:
    ///
    /// * `next_event`/`asid`/`backing` calls hit each source in the same
    ///   order and positions as sequentially — only earlier in host time.
    /// * The mapped-ness probe is trusted only when positive, and mappings
    ///   are monotone ([`SharedTables`]): a page observed mapped stays
    ///   mapped, so skipping the commit-time `translate` cannot diverge.
    ///   Negative/unknown probes are re-checked live.
    ///
    /// The cross-domain safety horizon is bounded by the fabric's
    /// [`lookahead`](nocstar_noc::Interconnect::lookahead); workers only
    /// ever run ahead on *pure* per-thread state, so no horizon violation
    /// is possible regardless of how far they lead.
    fn run_domains_parallel(&mut self, mode: RunMode) -> Result<(), Box<SimError>> {
        let mut per_domain: Vec<Vec<FeedThread>> = (0..self.domains).map(|_| Vec::new()).collect();
        for t in 0..self.threads.len() {
            let domain = self.domain_of_thread(t);
            let (tx, rx) = sync_channel(PIPE_BATCHES);
            let feed = std::mem::replace(
                &mut self.feeds[t],
                Feed::Piped {
                    rx,
                    buf: Vec::new(),
                    pos: 0,
                    worker: None,
                },
            );
            let Feed::Live(src) = feed else {
                return Err(self.protocol_error(format!("thread {t} feed was already piped")));
            };
            per_domain[domain].push(FeedThread {
                src,
                tx,
                ready: None,
            });
        }
        let tables = self.mem.shared_tables();
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let handles: Vec<std::thread::Thread> = per_domain
                .into_iter()
                .map(|threads| {
                    let tables = tables.clone();
                    let stop = &stop;
                    scope
                        .spawn(move || feed_domain(threads, tables, stop))
                        .thread()
                        .clone()
                })
                .collect();
            for t in 0..self.threads.len() {
                let domain = self.domain_of_thread(t);
                if let Feed::Piped { worker, .. } = &mut self.feeds[t] {
                    *worker = Some(handles[domain].clone());
                }
            }
            // Raised when the commit loop exits *or unwinds*, so workers
            // never outlive the scope's implicit join.
            let _stop_on_exit = StopOnDrop {
                stop: &stop,
                workers: &handles,
            };
            // Fast-forward consumes the piped feeds in the same per-thread
            // order as the event loop, so the worker precompute argument
            // above holds unchanged in sampled mode.
            match mode {
                RunMode::Exact => self.start_threads_and_event_loop(),
                RunMode::Sampled => self.sampled_loop(),
            }
        })
    }

    // ----- sampled fast-forward replay (SAMPLING.md) ------------------------

    /// Alternates functional fast-forward legs with detailed legs until
    /// the spec places no further window inside the span (`SAMPLING.md §1`
    /// state machine). The loop produces exactly
    /// [`SampleSpec::windows`]`(span)` measurement windows.
    fn sampled_loop(&mut self) -> Result<(), Box<SimError>> {
        for t in 0..self.threads.len() {
            self.threads[t].core = self.core_of(t);
        }
        let (spec, span) = match &self.sampling {
            Some(s) => (s.spec, s.span),
            None => return Err(self.protocol_error("sampled loop without sampling state".into())),
        };
        let mut consumed = 0u64;
        let mut ff = spec.offset();
        while consumed + ff + spec.warmup() + spec.window() <= span {
            self.fast_forward(ff);
            consumed += ff;
            self.detailed_leg(spec.warmup(), spec.window())?;
            consumed += spec.warmup() + spec.window();
            self.harvest_window();
            ff = spec.slack();
        }
        Ok(())
    }

    /// Functionally consumes `quota` memory accesses per thread without
    /// advancing simulated time: architectural state (page tables, TLB and
    /// replica contents, ASID state) evolves exactly as the trace
    /// dictates, but nothing is timed, counted, or sent over the network.
    /// Threads are drained round-robin, one access each, in thread-index
    /// order, so shared-state mutation order is deterministic and
    /// independent of the domain count (`SAMPLING.md §6`).
    fn fast_forward(&mut self, quota: u64) {
        for _ in 0..quota {
            for t in 0..self.threads.len() {
                loop {
                    let pe = self.next_pre_event(t);
                    match pe.ev {
                        TraceEvent::Access(a) => {
                            self.functional_access(t, pe.asid, a, pe.backing);
                            self.threads[t].accesses_done += 1;
                            break;
                        }
                        TraceEvent::ContextSwitch => {
                            let core = self.threads[t].core;
                            self.l1s[core.index()].flush_non_global();
                            self.mem.flush_pwc(core);
                            if self.config.org.is_shared() {
                                self.org.flush_all_non_global();
                            } else {
                                self.org.flush_core_non_global(core);
                            }
                        }
                        TraceEvent::Remap(vpn) => {
                            if self.mem.remap(pe.asid, vpn).is_some() {
                                self.functional_shootdown(pe.asid, vpn);
                            }
                        }
                        TraceEvent::Promote(v2m) => {
                            for i in 0..v2m.page_size().base_pages() {
                                let va = VirtAddr::new(v2m.base().value() + i * 4096);
                                if self.mem.translate(pe.asid, va).is_none() {
                                    self.mem.ensure_mapped(pe.asid, va, PageSize::Size4K);
                                }
                            }
                            if let Some(stale) = self.mem.promote(pe.asid, v2m) {
                                for vpn in stale {
                                    self.functional_shootdown(pe.asid, vpn);
                                }
                            }
                        }
                        TraceEvent::Demote(v2m) => {
                            if let Some(stale) = self.mem.demote(pe.asid, v2m) {
                                self.functional_shootdown(pe.asid, stale);
                            }
                        }
                    }
                }
            }
        }
        if let Some(s) = &mut self.sampling {
            s.ff_accesses += quota * self.threads.len() as u64;
        }
    }

    /// One access, functionally: the stat-free mirror of [`issue`]'s
    /// translation path. L1 and home-slice contents update through the
    /// stat-free `touch` entry points, misses demand-map and fill through
    /// [`MemorySystem::resolve_mapped`], and the same adjacent-page
    /// prefetch fills fire — so the TLB state a measurement window starts
    /// from matches what an exact replay would have left behind, up to
    /// timing-dependent interleaving (`SAMPLING.md §2`).
    ///
    /// The memory side warms functionally too: every access touches the
    /// data-cache hierarchy at the translated physical address, and every
    /// would-be walk touches the PWC and PTE cache lines — otherwise each
    /// measurement window would start from stale-warm caches and charge
    /// inflated miss latencies the exact replay never sees.
    fn functional_access(
        &mut self,
        t: usize,
        asid: Asid,
        access: MemAccess,
        backing: Option<PageSize>,
    ) {
        let va = access.va;
        let core = self.threads[t].core;
        if let Some(entry) = self.l1s[core.index()].touch(asid, va) {
            // An L1 entry exists only for a mapped page, and mapped-ness is
            // monotone — the demand-map check below would be a no-op.
            self.mem
                .warm_access(core, entry.translate(va), access.is_write);
            return;
        }
        let size = match backing {
            Some(size) => size,
            None => self.live_backing(t, va),
        };
        // The home is keyed by the workload's backing page size, exactly
        // as the issue path keys its lookup transaction.
        let home_vpn = va.page_number(size);
        let (home_idx, _) = self.org.home_of(home_vpn, core);
        if let Some(entry) = self.org.structure_mut(home_idx).touch(asid, home_vpn) {
            self.l1s[core.index()].insert(entry);
            self.mem
                .warm_access(core, entry.translate(va), access.is_write);
            return;
        }
        // Slice miss: a walk would resolve the page-table leaf (demand-
        // mapping on first touch), fill both levels, and pull the PTE
        // lines through the walking core's caches (variable-latency walks
        // only — fixed-latency walks never touch the hierarchy).
        let (vpn, ppn) = self.mem.resolve_mapped(asid, va, size);
        if self.config.walk_latency == WalkLatency::Variable {
            self.mem.warm_walk(core, asid, va);
        }
        let entry = TlbEntry::new(asid, vpn, ppn);
        self.org.structure_mut(home_idx).insert(entry);
        self.l1s[core.index()].insert(entry);
        self.mem
            .warm_access(core, entry.translate(va), access.is_write);
        self.functional_prefetch(home_vpn, asid);
    }

    /// [`prefetch_around`] minus timing and energy: fills the neighbours'
    /// home slices directly.
    fn functional_prefetch(&mut self, vpn: VirtPageNum, asid: Asid) {
        if !self.config.prefetch.is_enabled() {
            return;
        }
        let candidates: Vec<VirtPageNum> = self.config.prefetch.candidates(vpn).collect();
        for cand in candidates {
            if let Some((mapped_vpn, ppn)) = self.mem.translate(asid, cand.base()) {
                if mapped_vpn == cand {
                    let (idx, _) = self.org.home_of(cand, CoreId::new(0));
                    self.org
                        .structure_mut(idx)
                        .insert(TlbEntry::new(asid, cand, ppn));
                }
            }
        }
    }

    /// [`shootdown`] minus timing, counting and messaging: the stale
    /// translation leaves every L1 and every home structure immediately
    /// (re-homed backups cannot exist — sampled mode rejects recovery).
    fn functional_shootdown(&mut self, asid: Asid, vpn: VirtPageNum) {
        for l1 in &mut self.l1s {
            l1.invalidate(asid, vpn);
        }
        self.org.invalidate(asid, vpn);
    }

    /// One detailed leg: `warmup` cycle-accurate accesses per thread whose
    /// statistics are discarded at the boundary (the existing
    /// [`reset_statistics`] warmup machinery), then `window` measured
    /// accesses per thread. Resumes simulated time at the latest per-thread
    /// finish of the previous leg, so time stays monotone across legs.
    fn detailed_leg(&mut self, warmup: u64, window: u64) -> Result<(), Box<SimError>> {
        let done = self.threads[0].accesses_done;
        debug_assert!(
            self.threads.iter().all(|th| th.accesses_done == done),
            "threads drifted between legs"
        );
        self.warm_target = done + warmup;
        self.warm_crossed = 0;
        self.target = done + warmup + window;
        self.completed_threads = 0;
        let resume = self
            .threads
            .iter()
            .map(|th| th.finish_time)
            .fold(self.now, Cycle::max);
        for t in 0..self.threads.len() {
            self.threads[t].finished = false;
            self.events
                .push_in(self.domain_of_thread(t), resume, Event::ThreadNext(t));
        }
        self.event_loop()
    }

    /// Captures the window that just finished (`SAMPLING.md §1`,
    /// "Harvest"): everything [`finish`] would measure for a whole exact
    /// run, scoped to this window by the warmup-boundary statistics reset.
    fn harvest_window(&mut self) {
        let durations: Vec<u64> = self
            .threads
            .iter()
            .zip(&self.warm_cross_time)
            .map(|(th, &cross)| (th.finish_time - cross).value())
            .collect();
        let runtime = durations.iter().copied().max().unwrap_or(0);
        let mut l1 = HitMiss::new();
        for l in &self.l1s {
            l1.merge(l.stats());
        }
        let mut slice_concurrency = ConcurrencyBins::new();
        for tr in &self.org.trackers {
            slice_concurrency.merge(tr.bins());
        }
        let sample = WindowSample {
            durations,
            runtime,
            l1,
            l2: self.org.merged_stats(),
            per_structure: self.org.per_structure_stats(),
            walks: self.walks.get(),
            walks_llc_or_mem: self.walks_llc_or_mem.get(),
            shootdowns: self.shootdowns.get(),
            flushes: self.flushes.get(),
            translation_latency: self.translation_latency,
            energy: self.energy,
            chip_concurrency: self.org.chip_tracker.bins().clone(),
            slice_concurrency,
            network: self.net.stats().cloned(),
        };
        if let Some(s) = &mut self.sampling {
            for (total, d) in s.thread_measured.iter_mut().zip(&sample.durations) {
                *total += d;
            }
            s.windows.push(sample);
        }
    }

    /// The event loop proper: advances time event-to-event until every
    /// thread finishes, watching for deadlock (nothing pending), livelock
    /// (time advances but no access ever completes), and the configured
    /// cycle budget.
    fn event_loop(&mut self) -> Result<(), Box<SimError>> {
        let mut same_cycle_spins: u64 = 0;
        while self.completed_threads < self.threads.len() {
            let heap_next = self.events.next_time();
            let net_next = self.net.next_activity();
            let next = match (heap_next, net_next) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => {
                    debug_assert!(self.events.is_empty());
                    return Err(Box::new(SimError::Deadlock {
                        snapshot: self.snapshot(),
                    }));
                }
            };
            debug_assert!(next >= self.now, "time went backwards");
            if let Some(budget) = self.config.max_cycles {
                if next.value() > budget {
                    return Err(Box::new(SimError::CycleBudgetExceeded {
                        budget,
                        snapshot: self.snapshot(),
                    }));
                }
            }
            let stalled_for = next.value().saturating_sub(self.last_progress.value());
            if stalled_for > self.config.livelock_window {
                return Err(Box::new(SimError::Livelock {
                    stalled_for,
                    snapshot: self.snapshot(),
                }));
            }
            if next == self.now {
                same_cycle_spins += 1;
                if same_cycle_spins > SAME_CYCLE_SPIN_LIMIT {
                    return Err(Box::new(SimError::Livelock {
                        stalled_for,
                        snapshot: self.snapshot(),
                    }));
                }
            } else {
                same_cycle_spins = 0;
            }
            self.now = next;
            while let Some((_, event)) = self.events.pop_due(self.now) {
                self.handle_event(event)?;
            }
            if self.net.next_activity().is_some_and(|a| a <= self.now) {
                for d in self.net.advance(self.now) {
                    self.handle_delivery(d)?;
                }
            }
        }
        Ok(())
    }

    /// A diagnostic snapshot of the whole simulator: the network model's
    /// in-flight view plus the event-queue, transaction and thread state
    /// only the simulation loop knows.
    fn snapshot(&self) -> DiagSnapshot {
        let mut s = self.net.diagnostics(self.now);
        s.event_queue_depth = self.events.len();
        s.event_queue_domain_max = self.events.max_domain_depth();
        s.inflight_transactions = self.txs.len();
        s.unfinished_threads = self.threads.len() - self.completed_threads;
        s
    }

    /// A protocol-invariant violation carrying the full diagnostic state.
    fn protocol_error(&self, context: String) -> Box<SimError> {
        Box::new(SimError::Protocol {
            context,
            snapshot: self.snapshot(),
        })
    }

    // ----- thread lifecycle ------------------------------------------------

    /// Pulls thread `t`'s next precomputed trace event: directly from the
    /// source on the live (sequential) path, from the domain worker's
    /// channel on the piped path. The channel `recv` blocks only when the
    /// commit loop has outrun the worker.
    fn next_pre_event(&mut self, t: usize) -> PreEvent {
        match &mut self.feeds[t] {
            Feed::Live(src) => {
                let ev = src.next_event();
                PreEvent {
                    ev,
                    asid: src.asid(),
                    backing: None,
                    mapped: None,
                }
            }
            Feed::Piped {
                rx,
                buf,
                pos,
                worker,
            } => loop {
                if let Some(pe) = buf.get(*pos) {
                    *pos += 1;
                    break *pe;
                }
                if let Some(worker) = worker {
                    worker.unpark();
                }
                match rx.recv() {
                    Ok(batch) => {
                        *buf = batch;
                        *pos = 0;
                    }
                    Err(_) => panic!("feed worker for thread {t} exited mid-run"),
                }
            },
        }
    }

    /// The backing page size for thread `t`'s access of `va`, on the live
    /// path (piped feeds precompute it).
    fn live_backing(&self, t: usize, va: VirtAddr) -> PageSize {
        match &self.feeds[t] {
            Feed::Live(src) => src.backing(va),
            Feed::Piped { .. } => unreachable!("piped feeds carry the backing size"),
        }
    }

    fn thread_next(&mut self, t: usize) {
        if self.threads[t].finished {
            return;
        }
        let now = self.now;
        let domain = self.domain_of_thread(t);
        let pe = self.next_pre_event(t);
        match pe.ev {
            TraceEvent::Access(a) => {
                self.threads[t].pending = Some(PendingAccess {
                    access: a,
                    asid: pe.asid,
                    backing: pe.backing,
                    mapped: pe.mapped,
                });
                self.events.push_in(domain, now + a.gap, Event::Issue(t));
            }
            TraceEvent::ContextSwitch => {
                self.flushes.incr();
                let core = self.threads[t].core;
                self.l1s[core.index()].flush_non_global();
                self.mem.flush_pwc(core);
                if self.config.org.is_shared() {
                    // Paper §V: every context switch flushes all shared
                    // TLB contents on their x86 model.
                    self.org.flush_all_non_global();
                } else {
                    self.org.flush_core_non_global(core);
                }
                self.events
                    .push_in(domain, now + CTX_SWITCH_COST, Event::ThreadNext(t));
            }
            TraceEvent::Remap(vpn) => {
                let asid = pe.asid;
                if self.mem.remap(asid, vpn).is_some() {
                    // A page remap raises IPIs on every core: each handler
                    // relays an invalidation per the leader policy.
                    self.shootdown(asid, vpn, self.threads[t].core, true);
                }
                self.events
                    .push_in(domain, now + SHOOTDOWN_COST, Event::ThreadNext(t));
            }
            TraceEvent::Promote(v2m) => {
                let asid = pe.asid;
                // The microbenchmark allocated these pages before promoting.
                for i in 0..v2m.page_size().base_pages() {
                    let va = VirtAddr::new(v2m.base().value() + i * 4096);
                    if self.mem.translate(asid, va).is_none() {
                        self.mem
                            .ensure_mapped(asid, va, nocstar_types::PageSize::Size4K);
                    }
                }
                if let Some(stale) = self.mem.promote(asid, v2m) {
                    // Promotion is driven by one kernel thread (khugepaged-
                    // style): a single relay per stale page, not an IPI
                    // broadcast, keeps the 512-page storm tractable.
                    let core = self.threads[t].core;
                    for vpn in stale {
                        self.shootdown(asid, vpn, core, false);
                    }
                }
                self.events
                    .push_in(domain, now + SHOOTDOWN_COST, Event::ThreadNext(t));
            }
            TraceEvent::Demote(v2m) => {
                let asid = pe.asid;
                if let Some(stale) = self.mem.demote(asid, v2m) {
                    let core = self.threads[t].core;
                    self.shootdown(asid, stale, core, false);
                }
                self.events
                    .push_in(domain, now + SHOOTDOWN_COST, Event::ThreadNext(t));
            }
        }
    }

    fn handle_event(&mut self, event: Event) -> Result<(), Box<SimError>> {
        match event {
            Event::ThreadNext(t) => {
                self.thread_next(t);
                Ok(())
            }
            Event::Issue(t) => self.issue(t),
            Event::SliceDone(tx) => self.slice_done(tx),
            Event::WalkDone(tx) => self.walk_done(tx),
        }
    }

    // ----- slice re-homing (closed-loop recovery) ---------------------------

    /// The slice that will actually service `vpn` for `core` at `self.now`:
    /// the static home, unless re-homing is armed and the home is inside
    /// an injected offline window — then a deterministic backup slice.
    /// Also performs the lazy home-back handoff when a previously offline
    /// home is observed healthy again.
    ///
    /// The result is a pure function of (plan, policy, organization,
    /// cycle, vpn), so identical runs — sequential or domain-parallel —
    /// resolve identically.
    fn resolve_home(&mut self, vpn: VirtPageNum, core: CoreId) -> ResolvedHome {
        let (home_idx, home_tile) = self.org.home_of(vpn, core);
        let static_home = ResolvedHome {
            idx: home_idx,
            tile: home_tile,
            orig_idx: home_idx,
            rehomed: false,
            degraded: false,
        };
        if !self.recovery.is_enabled() || self.faults.is_empty() || !self.config.org.is_shared() {
            return static_home;
        }
        let now = self.now.value();
        if !self.faults.slice_offline(home_idx, now) {
            self.maybe_home_back(home_idx);
            return static_home;
        }
        if !self.recovery.rehome {
            return ResolvedHome {
                degraded: true,
                ..static_home
            };
        }
        match self.activate_rehome(home_idx) {
            Some(backup_idx) => ResolvedHome {
                idx: backup_idx,
                tile: self.org.tile_of(backup_idx),
                orig_idx: home_idx,
                rehomed: true,
                degraded: false,
            },
            // Every candidate backup is also offline: serve degraded.
            None => ResolvedHome {
                degraded: true,
                ..static_home
            },
        }
    }

    /// The deterministic backup for an offline slice at `now`: the next
    /// healthy slice scanning upward (wrapping), or — for cluster-homed
    /// organizations — the same set-range residue in the next surviving
    /// cluster, so the backup indexes its sets identically to the home.
    fn backup_slice(&self, home_idx: usize, now: u64) -> Option<usize> {
        let count = self.org.count();
        match self.config.org {
            TlbOrg::Hier { cluster_size, .. } => {
                let residue = home_idx % cluster_size;
                let clusters = count / cluster_size;
                let home_cluster = home_idx / cluster_size;
                (1..clusters)
                    .map(|j| ((home_cluster + j) % clusters) * cluster_size + residue)
                    .find(|&c| !self.faults.slice_offline(c, now))
            }
            _ => (1..count)
                .map(|s| (home_idx + s) % count)
                .find(|&c| !self.faults.slice_offline(c, now)),
        }
    }

    /// Opens (or re-validates) the re-homing window for an offline home.
    /// Returns the backup slice index, or `None` when the fault plan has
    /// every candidate offline too.
    fn activate_rehome(&mut self, home_idx: usize) -> Option<usize> {
        let now = self.now.value();
        if let Some(r) = self.rehomed.get(&home_idx) {
            if !self.faults.slice_offline(r.backup_idx, now) {
                return Some(r.backup_idx);
            }
            // Cascading outage reached the backup: close this window
            // (dropping its stale copies) before electing a new backup.
            self.handoff(home_idx);
        }
        let backup_idx = self.backup_slice(home_idx, now)?;
        self.rehome_activations.incr();
        self.rehomed.insert(
            home_idx,
            Rehome {
                backup_idx,
                since: self.now,
                first_served: false,
                inserted: BTreeSet::new(),
            },
        );
        Some(backup_idx)
    }

    /// Closes the re-homing window for `home_idx` if one is open: every
    /// entry the backup absorbed during the window is invalidated there,
    /// so no stale copy outlives the redirect once traffic homes back.
    fn maybe_home_back(&mut self, home_idx: usize) {
        if !self.rehomed.is_empty() && self.rehomed.contains_key(&home_idx) {
            self.rehome_homebacks.incr();
            self.handoff(home_idx);
        }
    }

    /// The coherent-handoff invalidation sweep for one closing window.
    fn handoff(&mut self, home_idx: usize) {
        let Some(rehome) = self.rehomed.remove(&home_idx) else {
            return;
        };
        self.rehome_handoff_entries
            .record(rehome.inserted.len() as u64);
        let now = self.now;
        let slice = self.org.structure_mut(rehome.backup_idx);
        if !rehome.inserted.is_empty() {
            slice.schedule_write(now);
        }
        for (asid, vpn) in &rehome.inserted {
            slice.invalidate(*asid, *vpn);
        }
    }

    /// Inserts into the resolved home, remembering redirected entries so
    /// the home-back handoff can invalidate them.
    fn insert_resolved(&mut self, home: ResolvedHome, entry: TlbEntry) {
        self.insert_home(home.idx, entry);
        if home.rehomed {
            if let Some(r) = self.rehomed.get_mut(&home.orig_idx) {
                if r.backup_idx == home.idx {
                    r.inserted.insert((entry.asid(), entry.vpn()));
                }
            }
        }
    }

    // ----- the translation path --------------------------------------------

    fn issue(&mut self, t: usize) -> Result<(), Box<SimError>> {
        let Some(pending) = self.threads[t].pending.take() else {
            return Err(
                self.protocol_error(format!("issue event for thread {t} with no pending access"))
            );
        };
        let core = self.threads[t].core;
        let asid = pending.asid;
        let access = pending.access;
        let va = access.va;
        // Demand-map on first touch at the workload's chosen page size. A
        // positive precomputed probe is trusted (mappings are monotone);
        // anything else checks the live tables.
        let mapped = match pending.mapped {
            Some(true) => true,
            _ => self.mem.translate(asid, va).is_some(),
        };
        let mut backing = pending.backing;
        if !mapped {
            let size = match backing {
                Some(size) => size,
                None => {
                    let size = self.live_backing(t, va);
                    backing = Some(size);
                    size
                }
            };
            self.mem.ensure_mapped(asid, va, size);
        }
        self.energy.add_l1_lookup();
        if let Some(entry) = self.l1s[core.index()].lookup(asid, va) {
            // L1 TLB hit: translation overlaps the L1-cache access.
            let pa = entry.translate(va);
            let data = self.mem.access(core, pa, access.is_write);
            self.complete_access(t, self.now + data_cost(data.latency));
            return Ok(());
        }
        // L1 miss: go to the L2 organization. Miss detection costs the
        // one-cycle L1 lookup.
        let t_req = self.now + Cycles::ONE;
        let size = match backing {
            Some(size) => size,
            None => self.live_backing(t, va),
        };
        let vpn = va.page_number(size);
        let home = self.resolve_home(vpn, core);
        let (home_idx, home_tile) = (home.idx, home.tile);
        let id = self.alloc_tx();
        let lookup = LookupTx {
            thread: t,
            requester: core,
            va,
            asid,
            vpn,
            is_write: access.is_write,
            issued_at: self.now,
            home_idx,
            home_tile,
            entry: None,
            walked: false,
            tracker_closed: false,
            slice_done_at: self.now,
            walk_cycles: 0,
            orig_home_idx: home.orig_idx,
            rehomed: home.rehomed,
            degraded: home.degraded,
        };
        self.trace.emit(TraceRecord {
            cycle: self.now.value(),
            component: core.index() as u32,
            kind: trace_kind::ISSUE,
            a: va.value(),
            b: t as u64,
        });
        self.org.chip_tracker.begin();
        self.org.trackers[home_idx].begin();
        self.txs.insert(id, TxState::Lookup(lookup));
        let local = home_tile == core || matches!(self.net, NetworkModel::None);
        if local {
            self.schedule_slice_lookup(id, t_req)?;
        } else {
            self.charge_message(core, home_tile);
            self.net.submit(
                t_req,
                Message::new(id, core, home_tile, MsgKind::TlbRequest),
            );
        }
        Ok(())
    }

    /// Schedules the home structure's SRAM lookup starting at `at` and
    /// performs the functional lookup. A slice inside an injected offline
    /// window answers miss-only: the lookup reads nothing (and inserts are
    /// dropped), but the structure stays electrically present, so the
    /// request falls back to a page walk instead of being lost.
    fn schedule_slice_lookup(&mut self, id: u64, at: Cycle) -> Result<(), Box<SimError>> {
        let Some(TxState::Lookup(mut lookup)) = self.txs.get(&id).copied() else {
            return Err(self.protocol_error(format!("slice lookup for unknown transaction {id}")));
        };
        if !self.faults.is_empty() {
            let off = self.faults.slice_offline(lookup.home_idx, at.value());
            self.org.structure_mut(lookup.home_idx).set_offline(off);
            if off {
                self.fault_slice_misses.incr();
                self.trace.emit(TraceRecord {
                    cycle: at.value(),
                    component: SLICE_COMPONENT_BASE + lookup.home_idx as u32,
                    kind: trace_kind::FAULT,
                    a: 1,
                    b: 0,
                });
            }
        }
        self.energy.add_l2_lookup(self.org.lookup_pj());
        let slice = self.org.structure_mut(lookup.home_idx);
        let done = slice.schedule_read(at);
        lookup.entry = slice.lookup(lookup.asid, lookup.vpn);
        let domain = self.domain_of_core(lookup.home_tile);
        self.txs.insert(id, TxState::Lookup(lookup));
        self.events.push_in(domain, done, Event::SliceDone(id));
        Ok(())
    }

    fn slice_done(&mut self, id: u64) -> Result<(), Box<SimError>> {
        let Some(TxState::Lookup(mut lookup)) = self.txs.get(&id).copied() else {
            return Err(self.protocol_error(format!("slice done for unknown transaction {id}")));
        };
        // The L2 access itself is over: close the concurrency trackers.
        if !lookup.tracker_closed {
            lookup.tracker_closed = true;
            lookup.slice_done_at = self.now;
            self.org.chip_tracker.end();
            self.org.trackers[lookup.home_idx].end();
            self.txs.insert(id, TxState::Lookup(lookup));
            self.trace.emit(TraceRecord {
                cycle: self.now.value(),
                component: SLICE_COMPONENT_BASE + lookup.home_idx as u32,
                kind: trace_kind::SLICE_DONE,
                a: lookup.va.value(),
                b: lookup.entry.is_some() as u64,
            });
        }
        let local = lookup.home_tile == lookup.requester || matches!(self.net, NetworkModel::None);
        match (lookup.entry, local) {
            (Some(_), true) => {
                let l = self.take_lookup(id)?;
                self.complete_translation(l)?;
            }
            (Some(_), false) => {
                self.charge_message(lookup.home_tile, lookup.requester);
                self.net.respond(
                    Message::new(id, lookup.home_tile, lookup.requester, MsgKind::TlbResponse),
                    self.now,
                )?;
            }
            (None, _) => {
                // Slice miss: walk per policy.
                let walk_here = local || self.config.walk_policy == WalkPolicy::AtRemote;
                if walk_here {
                    let walk_core = if local {
                        lookup.requester
                    } else {
                        lookup.home_tile
                    };
                    self.start_walk(id, walk_core)?;
                } else {
                    // Miss message back to the requester, which walks.
                    self.charge_message(lookup.home_tile, lookup.requester);
                    self.net.respond(
                        Message::new(id, lookup.home_tile, lookup.requester, MsgKind::TlbResponse),
                        self.now,
                    )?;
                }
            }
        }
        Ok(())
    }

    /// Removes and returns a lookup transaction, or a protocol error if it
    /// is missing or of another kind (the caller just observed it).
    fn take_lookup(&mut self, id: u64) -> Result<LookupTx, Box<SimError>> {
        match self.txs.remove(&id) {
            Some(TxState::Lookup(l)) => Ok(l),
            other => {
                if let Some(state) = other {
                    self.txs.insert(id, state);
                }
                Err(self.protocol_error(format!("transaction {id} vanished mid-completion")))
            }
        }
    }

    fn start_walk(&mut self, id: u64, walk_core: CoreId) -> Result<(), Box<SimError>> {
        let Some(TxState::Lookup(mut lookup)) = self.txs.get(&id).copied() else {
            return Err(self.protocol_error(format!("walk for unknown transaction {id}")));
        };
        // Cluster-homed organizations may shift the walk to the home
        // tile's walker when it is free strictly earlier; both candidates
        // are in the requester's cluster, so no overlay traffic is added.
        // A re-homed lookup's backup lives in *another* cluster, so the
        // walk stays where it is (no cross-cluster walker stealing).
        let walk_core = match self.config.org {
            TlbOrg::Hier { cluster_size, .. }
                if walk_core.index() / cluster_size == lookup.home_tile.index() / cluster_size =>
            {
                nocstar_mem::walker::cluster_walker(
                    walk_core,
                    lookup.home_tile,
                    cluster_size,
                    &self.walker_free,
                )
            }
            _ => walk_core,
        };
        let start = self.now.max(self.walker_free[walk_core.index()]);
        let multiplier = if self.faults.is_empty() {
            1
        } else {
            self.faults.walk_multiplier(self.now.value())
        };
        if multiplier > 1 {
            self.fault_walk_spikes.incr();
            self.trace.emit(TraceRecord {
                cycle: self.now.value(),
                component: walk_core.index() as u32,
                kind: trace_kind::FAULT,
                a: 2,
                b: multiplier,
            });
        }
        let result = self.mem.walk_spiked(
            walk_core,
            lookup.asid,
            lookup.va,
            self.config.walk_latency,
            multiplier,
        );
        self.walks.incr();
        if result.touched_llc_or_memory() {
            self.walks_llc_or_mem.incr();
        }
        for read in &result.pte_reads {
            self.energy.add_walk_access(match read {
                ServicedBy::Pwc => model::PWC_PJ,
                ServicedBy::L1 => model::L1_CACHE_PJ,
                ServicedBy::L2 => model::L2_CACHE_PJ,
                ServicedBy::Llc => model::LLC_CACHE_PJ,
                ServicedBy::Dram => model::DRAM_PJ,
            });
        }
        let done = start + result.latency + WALK_REPLAY_PENALTY;
        self.walker_free[walk_core.index()] = start + result.latency;
        debug_assert_eq!(result.vpn, lookup.vpn, "walk resolved a different page");
        lookup.entry = Some(TlbEntry::new(lookup.asid, result.vpn, result.ppn));
        lookup.walked = true;
        lookup.walk_cycles += (done - self.now).value();
        let domain = self.domain_of_core(walk_core);
        self.txs.insert(id, TxState::Lookup(lookup));
        self.events.push_in(domain, done, Event::WalkDone(id));
        Ok(())
    }

    fn walk_done(&mut self, id: u64) -> Result<(), Box<SimError>> {
        let Some(TxState::Lookup(lookup)) = self.txs.get(&id).copied() else {
            return Err(self.protocol_error(format!("walk done for unknown transaction {id}")));
        };
        let Some(entry) = lookup.entry else {
            return Err(
                self.protocol_error(format!("walk for transaction {id} stored no translation"))
            );
        };
        self.trace.emit(TraceRecord {
            cycle: self.now.value(),
            component: lookup.requester.index() as u32,
            kind: trace_kind::WALK_DONE,
            a: lookup.va.value(),
            b: lookup.walk_cycles,
        });
        self.prefetch_around(lookup.vpn, lookup.asid);
        let local = lookup.home_tile == lookup.requester || matches!(self.net, NetworkModel::None);
        let walked_at_requester = local || self.config.walk_policy == WalkPolicy::AtRequester;
        if walked_at_requester {
            // Insert into the home structure (remotely if needed), then the
            // translation is immediately usable at the requester.
            if local {
                self.insert_resolved(lookup.resolved_home(), entry);
            } else {
                let iid = self.alloc_tx();
                self.txs.insert(iid, TxState::Insert(entry));
                self.charge_message(lookup.requester, lookup.home_tile);
                self.net.submit(
                    self.now,
                    Message::new(iid, lookup.requester, lookup.home_tile, MsgKind::Insert),
                );
            }
            let l = self.take_lookup(id)?;
            self.complete_translation(l)?;
        } else {
            // Walked at the remote node: insert locally, respond.
            self.insert_resolved(lookup.resolved_home(), entry);
            self.charge_message(lookup.home_tile, lookup.requester);
            self.net.respond(
                Message::new(id, lookup.home_tile, lookup.requester, MsgKind::TlbResponse),
                self.now,
            )?;
        }
        Ok(())
    }

    fn insert_home(&mut self, home_idx: usize, entry: TlbEntry) {
        let now = self.now;
        if !self.faults.is_empty() {
            let off = self.faults.slice_offline(home_idx, now.value());
            self.org.structure_mut(home_idx).set_offline(off);
        }
        self.energy.add_l2_lookup(self.org.lookup_pj());
        let slice = self.org.structure_mut(home_idx);
        slice.schedule_write(now);
        slice.insert(entry);
    }

    /// Adjacent-page prefetching into the shared structures (Table III).
    fn prefetch_around(&mut self, vpn: VirtPageNum, asid: Asid) {
        if !self.config.prefetch.is_enabled() {
            return;
        }
        let candidates: Vec<VirtPageNum> = self.config.prefetch.candidates(vpn).collect();
        for cand in candidates {
            if let Some((mapped_vpn, ppn)) = self.mem.translate(asid, cand.base()) {
                if mapped_vpn == cand {
                    let (idx, _) = self.org.home_of(cand, CoreId::new(0));
                    self.insert_home(idx, TlbEntry::new(asid, cand, ppn));
                }
            }
        }
    }

    fn complete_translation(&mut self, lookup: LookupTx) -> Result<(), Box<SimError>> {
        debug_assert!(lookup.tracker_closed, "trackers left open");
        let Some(entry) = lookup.entry else {
            return Err(self.protocol_error(format!(
                "translation for {} completed unresolved",
                lookup.va
            )));
        };
        let total = self.now - lookup.issued_at;
        self.translation_latency.record(total);
        let core = lookup.requester.index();
        let slice_stall = (lookup.slice_done_at - lookup.issued_at).value();
        let response_stall = total
            .value()
            .saturating_sub(slice_stall + lookup.walk_cycles);
        self.metrics.add(self.stall_slice[core], slice_stall);
        self.metrics.add(self.stall_walk[core], lookup.walk_cycles);
        self.metrics.add(self.stall_response[core], response_stall);
        self.trace.emit(TraceRecord {
            cycle: self.now.value(),
            component: core as u32,
            kind: trace_kind::TRANSLATION_DONE,
            a: lookup.va.value(),
            b: total.value(),
        });
        if lookup.rehomed {
            self.recovered_translations.incr();
            if let Some(r) = self.rehomed.get_mut(&lookup.orig_home_idx) {
                if !r.first_served {
                    r.first_served = true;
                    self.detect_to_recovered
                        .record((self.now - r.since).value());
                }
            }
        } else if lookup.degraded {
            self.degraded_translations.incr();
        }
        self.l1s[lookup.requester.index()].insert(entry);
        let pa = entry.translate(lookup.va);
        let data = self.mem.access(lookup.requester, pa, lookup.is_write);
        self.complete_access(lookup.thread, self.now + data_cost(data.latency));
        Ok(())
    }

    fn complete_access(&mut self, t: usize, done: Cycle) {
        let state = &mut self.threads[t];
        state.accesses_done += 1;
        state.finish_time = done;
        self.last_completion = self.last_completion.max(done);
        self.last_progress = self.last_progress.max(self.now);
        if self.warm_target > 0 && state.accesses_done == self.warm_target {
            self.warm_cross_time[t] = done;
            self.warm_crossed += 1;
            if self.warm_crossed == self.threads.len() {
                self.reset_statistics();
            }
        }
        let state = &mut self.threads[t];
        if state.accesses_done >= self.target {
            state.finished = true;
            self.completed_threads += 1;
        } else {
            self.events
                .push_in(self.domain_of_thread(t), done, Event::ThreadNext(t));
        }
    }

    // ----- shootdowns -------------------------------------------------------

    /// Invalidates a stale translation chip-wide.
    ///
    /// With `ipi_broadcast`, every core's interrupt handler relays an
    /// invalidation message per the leader policy (§III-G): with no
    /// leaders, all cores' messages converge on the home slice; with
    /// leaders, non-leader cores message their leader (which drops the
    /// duplicates) and each leader relays one message to the slice.
    /// Without `ipi_broadcast` (superpage promotion/demotion churn), only
    /// the initiating core relays.
    fn shootdown(&mut self, asid: Asid, vpn: VirtPageNum, initiator: CoreId, ipi_broadcast: bool) {
        // An injected shootdown storm escalates single-relay invalidations
        // (promotion/demotion churn) into full IPI broadcasts, flooding
        // the leader-policy relay tree with worst-case traffic.
        let storm_forced =
            !ipi_broadcast && !self.faults.is_empty() && self.faults.storm_active(self.now.value());
        let ipi_broadcast = ipi_broadcast || storm_forced;
        if storm_forced {
            self.fault_storm_relays.incr();
            self.trace.emit(TraceRecord {
                cycle: self.now.value(),
                component: initiator.index() as u32,
                kind: trace_kind::FAULT,
                a: 3,
                b: 0,
            });
        }
        self.shootdowns.incr();
        // IPIs reach every core: private L1s drop the stale translation.
        for l1 in &mut self.l1s {
            l1.invalidate(asid, vpn);
        }
        // Re-homing may have placed copies outside the static homes the
        // invalidation messages target. The IPI reaches every tile, so
        // each active backup drops its redirected copy immediately.
        if !self.rehomed.is_empty() {
            let mut backups: Vec<usize> = Vec::new();
            for r in self.rehomed.values_mut() {
                if r.inserted.remove(&(asid, vpn)) {
                    backups.push(r.backup_idx);
                }
            }
            for b in backups {
                self.org.structure_mut(b).invalidate(asid, vpn);
            }
        }
        match self.config.org {
            TlbOrg::Private { .. } | TlbOrg::IdealShared { .. } => {
                // Each core's interrupt handler invalidates its own L2
                // (private), or the slice is reached with zero latency.
                self.org.invalidate(asid, vpn);
            }
            TlbOrg::Hier { .. } => {
                // Every cluster replicates the residue map, so each
                // cluster's home slice must be invalidated. Leader
                // policies are bypassed: the natural relay tree is the
                // cluster itself — under a broadcast each core messages
                // its *own* cluster's home (all traffic intra-cluster);
                // otherwise the initiator fans out one invalidation per
                // cluster replica (the only traffic class that rides the
                // overlay).
                let inv = Invalidation { asid, vpn };
                let targets: Vec<(CoreId, usize, CoreId)> = if ipi_broadcast {
                    CoreId::all(self.config.cores)
                        .map(|core| {
                            let (home_idx, home_tile) = self.org.home_of(vpn, core);
                            (core, home_idx, home_tile)
                        })
                        .collect()
                } else {
                    self.org
                        .homes_of(vpn)
                        .into_iter()
                        .map(|(home_idx, home_tile)| (initiator, home_idx, home_tile))
                        .collect()
                };
                for (src, home_idx, home_tile) in targets {
                    let id = self.alloc_tx();
                    self.txs.insert(
                        id,
                        TxState::Inval {
                            inv,
                            home_idx,
                            at_leader: true,
                        },
                    );
                    self.charge_message(src, home_tile);
                    self.net.submit(
                        self.now,
                        Message::new(id, src, home_tile, MsgKind::Invalidation),
                    );
                }
            }
            TlbOrg::Monolithic { .. } | TlbOrg::Distributed { .. } | TlbOrg::Nocstar { .. } => {
                if matches!(self.net, NetworkModel::None) {
                    // Zero-latency interconnect variants invalidate directly.
                    self.org.invalidate(asid, vpn);
                    return;
                }
                let (home_idx, home_tile) = self.org.home_of(vpn, initiator);
                let inv = Invalidation { asid, vpn };
                let relayers: Vec<CoreId> = if ipi_broadcast {
                    CoreId::all(self.config.cores).collect()
                } else {
                    vec![initiator]
                };
                for core in relayers {
                    let leader = self.config.leader_policy.leader_for(core);
                    // Leaders (and direct-to-slice policies) send the slice
                    // leg; other cores send an IPI-relay leg to their
                    // leader, which is dropped on arrival (the leader's own
                    // message carries the invalidation).
                    let (dst, at_leader) = if leader == core {
                        (home_tile, true)
                    } else {
                        (leader, false)
                    };
                    let id = self.alloc_tx();
                    self.txs.insert(
                        id,
                        TxState::Inval {
                            inv,
                            home_idx,
                            at_leader,
                        },
                    );
                    self.charge_message(core, dst);
                    self.net
                        .submit(self.now, Message::new(id, core, dst, MsgKind::Invalidation));
                }
            }
        }
    }

    // ----- network ----------------------------------------------------------

    fn handle_delivery(&mut self, d: Delivery) -> Result<(), Box<SimError>> {
        let id = d.msg.id;
        match d.msg.kind {
            MsgKind::TlbRequest => self.schedule_slice_lookup(id, d.at)?,
            MsgKind::TlbResponse => {
                let Some(TxState::Lookup(lookup)) = self.txs.get(&id).copied() else {
                    return Err(
                        self.protocol_error(format!("response for unknown transaction {id}"))
                    );
                };
                if lookup.entry.is_some() {
                    let l = self.take_lookup(id)?;
                    self.complete_translation(l)?;
                } else {
                    // Miss reply: walk at the requesting core (Fig 17).
                    self.start_walk(id, lookup.requester)?;
                }
            }
            MsgKind::Insert => {
                let Some(TxState::Insert(entry)) = self.txs.remove(&id) else {
                    return Err(self.protocol_error(format!("insert for unknown transaction {id}")));
                };
                let vpn = entry.vpn();
                // Resolve at delivery time: if the static home went
                // offline while this insert was in flight, it lands at
                // the current backup (and is tracked for the handoff).
                let home = self.resolve_home(vpn, d.msg.dst);
                self.insert_resolved(home, entry);
            }
            MsgKind::Invalidation => {
                let Some(TxState::Inval {
                    inv,
                    home_idx,
                    at_leader,
                    ..
                }) = self.txs.remove(&id)
                else {
                    return Err(
                        self.protocol_error(format!("invalidation for unknown transaction {id}"))
                    );
                };
                if at_leader {
                    // Arrived at the slice: invalidate (uses a write port).
                    let now = self.now;
                    let slice = self.org.structure_mut(home_idx);
                    slice.schedule_write(now);
                    slice.invalidate(inv.asid, inv.vpn);
                }
                // Non-leader relays end at the leader: the leader's own
                // direct message performs the slice invalidation.
            }
        }
        Ok(())
    }

    fn charge_message(&mut self, src: CoreId, dst: CoreId) {
        if let Some(design) = self.energy_design {
            let hops = self.mesh.hops(src, dst);
            let e = model::message_energy(design, hops);
            self.energy.add_noc(e.link + e.switch + e.control);
        }
    }

    fn alloc_tx(&mut self) -> u64 {
        self.next_tx += 1;
        self.next_tx
    }

    // ----- wrap-up ----------------------------------------------------------

    /// The warmup boundary: forget everything measured so far (contents of
    /// TLBs, caches and page tables are kept).
    fn reset_statistics(&mut self) {
        for l1 in &mut self.l1s {
            l1.reset_stats();
        }
        self.org.reset_stats();
        self.mem.reset_cache_stats();
        self.net.reset_stats();
        self.energy = EnergyAccount::default();
        self.translation_latency = LatencyRecorder::new();
        self.walks = Counter::new();
        self.walks_llc_or_mem = Counter::new();
        self.shootdowns = Counter::new();
        self.flushes = Counter::new();
        self.fault_slice_misses = Counter::new();
        self.fault_walk_spikes = Counter::new();
        self.fault_storm_relays = Counter::new();
        // Recovery *statistics* reset; active re-homing windows are state,
        // not stats, and survive the warmup boundary.
        self.recovered_translations = Counter::new();
        self.degraded_translations = Counter::new();
        self.rehome_activations = Counter::new();
        self.rehome_homebacks = Counter::new();
        self.rehome_handoff_entries = Log2Histogram::new();
        self.detect_to_recovered = Log2Histogram::new();
        self.metrics.reset_values();
        self.trace.clear();
    }

    /// Publishes harvest-time observability into the registry: end-of-run
    /// slice occupancy and port-wait distributions, interconnect link and
    /// arbitration totals, and walk histograms. Hot-path counters (per-core
    /// stall breakdowns) are already in place.
    fn harvest_metrics(&mut self, window: u64) {
        if !self.metrics.is_enabled() {
            return;
        }
        for i in 0..self.org.count() {
            let occupancy = self.org.structure(i).array().occupancy() as u64;
            let waits = *self.org.structure(i).queue_wait_histogram();
            let g = self.metrics.gauge(&format!("l2.{i}.occupancy"));
            self.metrics.set_gauge(g, occupancy);
            let h = self.metrics.histogram(&format!("l2.{i}.queue_wait_cycles"));
            self.metrics.merge_histogram(h, &waits);
        }
        // Per-cluster aggregates for hierarchical organizations: slice
        // hit/miss and occupancy rolled up over each cluster's slices, so
        // a 1024-core report stays readable at cluster granularity.
        if let TlbOrg::Hier { cluster_size, .. } = self.config.org {
            let per_slice = self.org.per_structure_stats();
            for k in 0..self.config.cores / cluster_size {
                let slices = k * cluster_size..(k + 1) * cluster_size;
                let (mut hits, mut misses, mut occupancy) = (0u64, 0u64, 0u64);
                for i in slices {
                    hits += per_slice[i].hits();
                    misses += per_slice[i].misses();
                    occupancy += self.org.structure(i).array().occupancy() as u64;
                }
                let c = self.metrics.counter(&format!("cluster.{k}.l2_hits"));
                self.metrics.add(c, hits);
                let c = self.metrics.counter(&format!("cluster.{k}.l2_misses"));
                self.metrics.add(c, misses);
                let g = self.metrics.gauge(&format!("cluster.{k}.occupancy"));
                self.metrics.set_gauge(g, occupancy);
            }
        }
        let walk_latency = *self.mem.walk_latency_histogram();
        let h = self.metrics.histogram("mem.walk_latency_cycles");
        self.metrics.merge_histogram(h, &walk_latency);
        let pwc_hits = *self.mem.pwc_hits_histogram();
        let h = self.metrics.histogram("mem.pwc_hits_per_walk");
        self.metrics.merge_histogram(h, &pwc_hits);
        if let Some(stats) = self.net.stats().cloned() {
            for (name, v) in [
                ("noc.delivered", stats.delivered),
                ("noc.grants", stats.grants),
                ("noc.no_contention", stats.no_contention),
                ("noc.retries", stats.retries),
                ("noc.rotations", stats.rotations),
            ] {
                let c = self.metrics.counter(name);
                self.metrics.add(c, v);
            }
            for (l, &busy) in stats.link_busy.iter().enumerate() {
                let c = self.metrics.counter(&format!("noc.link.{l}.busy_cycles"));
                self.metrics.add(c, busy);
            }
            // The measurement window, so link utilization is recoverable
            // as busy_cycles / window.
            let g = self.metrics.gauge("noc.window_cycles");
            self.metrics.set_gauge(g, window);
        }
        // Fault accounting exists only under a non-empty plan, so
        // fault-free reports (and their goldens) are byte-identical to
        // builds that never heard of fault injection.
        if !self.faults.is_empty() {
            for (name, v) in [
                (
                    "faults.slice_offline_lookups",
                    self.fault_slice_misses.get(),
                ),
                ("faults.walk_spikes", self.fault_walk_spikes.get()),
                ("faults.storm_relays", self.fault_storm_relays.get()),
            ] {
                let c = self.metrics.counter(name);
                self.metrics.add(c, v);
            }
            if let Some(fs) = self.net.fault_stats().cloned() {
                for (name, v) in [
                    ("faults.denied_setups", fs.denied_setups),
                    ("faults.link_blocked", fs.link_blocked),
                    ("faults.fallbacks", fs.fallbacks),
                    ("faults.degraded_traversals", fs.degraded_traversals),
                    ("faults.backoff_cycles", fs.backoff_cycles),
                ] {
                    let c = self.metrics.counter(name);
                    self.metrics.add(c, v);
                }
                let h = self.metrics.histogram("faults.retries_per_fallback");
                self.metrics.merge_histogram(h, &fs.retries_per_fallback);
            }
        }
        // Recovery accounting exists only when a policy AND a plan are
        // installed, so recovery-off reports (and their goldens) stay
        // byte-identical to builds that never heard of recovery.
        if self.recovery.is_enabled() && !self.faults.is_empty() {
            for (name, v) in [
                (
                    "recovery.translations_recovered",
                    self.recovered_translations.get(),
                ),
                (
                    "recovery.translations_degraded",
                    self.degraded_translations.get(),
                ),
                ("recovery.rehome_activations", self.rehome_activations.get()),
                ("recovery.rehome_homebacks", self.rehome_homebacks.get()),
            ] {
                let c = self.metrics.counter(name);
                self.metrics.add(c, v);
            }
            let handoff = self.rehome_handoff_entries;
            let h = self.metrics.histogram("recovery.rehome_handoff_entries");
            self.metrics.merge_histogram(h, &handoff);
            let recovered = self.detect_to_recovered;
            let h = self
                .metrics
                .histogram("recovery.detect_to_recovered_cycles");
            self.metrics.merge_histogram(h, &recovered);
            for (name, p) in [
                ("recovery.detect_to_recovered_p50", 50.0),
                ("recovery.detect_to_recovered_p99", 99.0),
            ] {
                if let Some(v) = recovered.approx_percentile(p) {
                    let c = self.metrics.counter(name);
                    self.metrics.add(c, v);
                }
            }
            if let Some(rs) = self.net.recovery_stats() {
                for (name, v) in [
                    ("recovery.reroutes", rs.reroutes),
                    ("recovery.detour_extra_hops", rs.detour_extra_hops),
                    ("recovery.reroute_failed", rs.reroute_failed),
                    ("recovery.escalations", rs.escalations),
                    ("recovery.gateway_failovers", rs.gateway_failovers),
                ] {
                    let c = self.metrics.counter(name);
                    self.metrics.add(c, v);
                }
                let h = self.metrics.histogram("recovery.detect_to_reroute_cycles");
                self.metrics.merge_histogram(h, &rs.detect_to_reroute);
                for (name, p) in [
                    ("recovery.detect_to_reroute_p50", 50.0),
                    ("recovery.detect_to_reroute_p99", 99.0),
                ] {
                    if let Some(v) = rs.detect_to_reroute.approx_percentile(p) {
                        let c = self.metrics.counter(name);
                        self.metrics.add(c, v);
                    }
                }
            }
        }
    }

    fn finish(mut self) -> SimReport {
        if self.sampling.is_some() {
            return self.finish_sampled();
        }
        let durations: Vec<u64> = self
            .threads
            .iter()
            .zip(&self.warm_cross_time)
            .map(|(th, &cross)| (th.finish_time - cross).value())
            .collect();
        let runtime = Cycles::new(durations.iter().copied().max().unwrap_or(0));
        self.harvest_metrics(runtime.value());
        // The energy account compares *dynamic* address-translation energy
        // (TLB lookups, interconnect messages, page-walk memory accesses),
        // as in McPAT-style studies. Leakage is excluded: total TLB SRAM is
        // area-normalized across organizations and the interconnect's
        // static power is ~1/4 of the SRAM's (Fig 9), so static terms are
        // nearly org-invariant and, at this simulator's footprint-scaled
        // event counts, would only drown the walk-elimination effect the
        // paper's Fig 14 (right) isolates. `EnergyAccount::add_static`
        // remains available for whole-chip studies.
        let mut l1 = nocstar_stats::counter::HitMiss::new();
        for l in &self.l1s {
            l1.merge(l.stats());
        }
        let mut slice_concurrency = nocstar_stats::histogram::ConcurrencyBins::new();
        for t in &self.org.trackers {
            slice_concurrency.merge(t.bins());
        }
        SimReport {
            label: self.label,
            org_label: self.config.org.label().to_string(),
            cores: self.config.cores,
            cycles: runtime.value(),
            accesses: self.threads.len() as u64 * (self.target - self.warm_target),
            per_thread_finish: durations,
            l1,
            l2: self.org.merged_stats(),
            per_structure: self.org.per_structure_stats(),
            l2_occupancy: self.org.occupancy(),
            walks: self.walks.get(),
            walks_llc_or_mem: self.walks_llc_or_mem.get(),
            shootdowns: self.shootdowns.get(),
            flushes: self.flushes.get(),
            chip_concurrency: self.org.chip_tracker.bins().clone(),
            slice_concurrency,
            translation_latency: self.translation_latency,
            network: self.net.stats().cloned(),
            energy: self.energy,
            metrics: self.metrics.snapshot(),
            trace: self.trace.records().copied().collect(),
            trace_dropped: self.trace.dropped(),
            sampling: None,
        }
    }

    /// Reduces a sampled run to its report (`SAMPLING.md §4`): window sums
    /// for totals, window merges for distributions, end-state for
    /// occupancy, the `SAMPLING.md §3` interval estimates in the
    /// `sampling` section. Also handles partial (aborted) sampled runs —
    /// whatever windows completed are reported, and the estimate list is
    /// empty when none did.
    fn finish_sampled(mut self) -> SimReport {
        let Some(state) = self.sampling.take() else {
            // finish() dispatches here only when the state exists.
            return self.finish();
        };
        let spec = state.spec;
        let windows = state.windows;
        let threads = self.threads.len() as u64;
        let last_runtime = windows.last().map_or(0, |w| w.runtime);
        self.harvest_metrics(last_runtime);
        let mut cycles = 0u64;
        let mut l1 = HitMiss::new();
        let mut l2 = HitMiss::new();
        let mut per_structure: Vec<HitMiss> = Vec::new();
        let mut walks = 0u64;
        let mut walks_llc_or_mem = 0u64;
        let mut shootdowns = 0u64;
        let mut flushes = 0u64;
        let mut translation_latency = LatencyRecorder::new();
        let mut energy = EnergyAccount::default();
        let mut chip_concurrency = ConcurrencyBins::new();
        let mut slice_concurrency = ConcurrencyBins::new();
        let mut network: Option<NocStats> = None;
        for w in &windows {
            cycles += w.runtime;
            l1.merge(w.l1);
            l2.merge(w.l2);
            if per_structure.len() < w.per_structure.len() {
                per_structure.resize(w.per_structure.len(), HitMiss::new());
            }
            for (total, s) in per_structure.iter_mut().zip(&w.per_structure) {
                total.merge(*s);
            }
            walks += w.walks;
            walks_llc_or_mem += w.walks_llc_or_mem;
            shootdowns += w.shootdowns;
            flushes += w.flushes;
            translation_latency.merge(&w.translation_latency);
            energy.merge(&w.energy);
            chip_concurrency.merge(&w.chip_concurrency);
            slice_concurrency.merge(&w.slice_concurrency);
            if let Some(n) = &w.network {
                match &mut network {
                    Some(total) => total.merge(n),
                    None => network = Some(n.clone()),
                }
            }
        }
        let estimates = sampling::estimates(&windows, spec.window(), self.threads.len());
        let section = SamplingReport {
            spec: spec.to_string(),
            period: spec.period(),
            window: spec.window(),
            warmup: spec.warmup(),
            seed: spec.seed(),
            offset: spec.offset(),
            windows: windows.len() as u64,
            span_accesses_per_thread: state.span,
            accesses_fast_forwarded: state.ff_accesses,
            accesses_detailed: windows.len() as u64 * (spec.warmup() + spec.window()) * threads,
            estimates,
        };
        SimReport {
            label: self.label,
            org_label: self.config.org.label().to_string(),
            cores: self.config.cores,
            cycles,
            accesses: windows.len() as u64 * spec.window() * threads,
            per_thread_finish: state.thread_measured,
            l1,
            l2,
            per_structure,
            l2_occupancy: self.org.occupancy(),
            walks,
            walks_llc_or_mem,
            shootdowns,
            flushes,
            chip_concurrency,
            slice_concurrency,
            translation_latency,
            network,
            energy,
            metrics: self.metrics.snapshot(),
            trace: self.trace.records().copied().collect(),
            trace_dropped: self.trace.dropped(),
            sampling: Some(section),
        }
    }
}

/// The visible cost of a data access under out-of-order overlap: the L1
/// latency in full, plus 1/8 of anything beyond it (see [`DATA_MLP_SHIFT`]).
fn data_cost(latency: Cycles) -> Cycles {
    let l1 = 4u64;
    let l = latency.value();
    Cycles::new(l.min(l1) + (l.saturating_sub(l1) >> DATA_MLP_SHIFT))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::WorkloadAssignment;
    use nocstar_workloads::preset::Preset;

    fn run(cores: usize, org: TlbOrg, accesses: u64) -> SimReport {
        let config = SystemConfig::new(cores, org);
        let workload = WorkloadAssignment::preset(&config, Preset::Redis);
        Simulation::new(config, workload).run(accesses)
    }

    fn run_sampled(cores: usize, org: TlbOrg, spec: &str, total: u64, domains: usize) -> SimReport {
        let mut config = SystemConfig::new(cores, org);
        config.parallel_domains = domains;
        let workload = WorkloadAssignment::preset(&config, Preset::Redis);
        let spec: SampleSpec = spec.parse().expect("valid sample spec");
        Simulation::new(config, workload).run_sampled(spec, total)
    }

    #[test]
    fn sampled_run_reports_windows_and_estimates() {
        let spec: SampleSpec = "500:40:20@7".parse().expect("valid spec");
        let report = run_sampled(4, TlbOrg::paper_nocstar(), "500:40:20@7", 2_000, 1);
        let s = report.sampling.as_ref().expect("sampling section");
        assert_eq!(s.windows, spec.windows(2_000));
        assert!(s.windows >= 2);
        // Report totals cover exactly the measured windows.
        assert_eq!(report.accesses, s.windows * 40 * 4);
        // The consumed span stops at the last window's end — the trailing
        // slack is never replayed.
        assert_eq!(
            s.accesses_fast_forwarded + s.accesses_detailed,
            (spec.offset() + (s.windows - 1) * 500 + 60) * 4
        );
        assert_eq!(s.estimates.len(), 9);
        let cpa = s.estimate("cycles_per_access").expect("cycles estimate");
        assert_eq!(cpa.per_window.len(), s.windows as usize);
        assert!(cpa.interval.mean() > 0.0);
        // Whole-run cycles are the sum of the window runtimes.
        let total: f64 = cpa.per_window.iter().map(|v| v * 40.0).sum();
        assert!((total - report.cycles as f64).abs() < 1e-6);
    }

    #[test]
    fn sampled_runs_are_deterministic_across_domain_counts() {
        let baseline = run_sampled(8, TlbOrg::paper_nocstar(), "400:30:15@3", 1_700, 1)
            .to_json()
            .to_string();
        for domains in [2, 4, 8] {
            let got = run_sampled(8, TlbOrg::paper_nocstar(), "400:30:15@3", 1_700, domains)
                .to_json()
                .to_string();
            assert_eq!(got, baseline, "{domains} domains diverged");
        }
    }

    #[test]
    fn exact_reports_carry_no_sampling_section() {
        let report = run(4, TlbOrg::paper_nocstar(), 300);
        assert!(report.sampling.is_none());
        assert!(!report.to_json().to_string().contains("\"sampling\""));
    }

    #[test]
    #[should_panic(expected = "no measurement window")]
    fn sampled_run_rejects_a_span_without_a_window() {
        run_sampled(4, TlbOrg::paper_nocstar(), "1000:60:30@0", 80, 1);
    }

    #[test]
    #[should_panic(expected = "incompatible with fault plans")]
    fn sampled_run_rejects_fault_plans() {
        let config = SystemConfig::new(4, TlbOrg::paper_nocstar());
        let workload = WorkloadAssignment::preset(&config, Preset::Redis);
        let spec: SampleSpec = "500:40:20@0".parse().expect("valid spec");
        let mut plan = FaultPlan::default();
        plan.walk_spikes.push(nocstar_faults::WalkSpike {
            window: nocstar_faults::CycleWindow {
                start: 0,
                end: u64::MAX,
            },
            multiplier: 4,
        });
        Simulation::new(config, workload)
            .with_faults(plan)
            .run_sampled(spec, 2_000);
    }

    #[test]
    fn private_baseline_runs_to_completion() {
        let report = run(4, TlbOrg::paper_private(), 500);
        assert_eq!(report.accesses, 4 * 500);
        assert!(report.cycles > 0);
        assert!(report.l1.accesses() >= 2000);
        assert!(report.walks > 0);
    }

    #[test]
    fn every_organization_completes_the_same_work() {
        for org in [
            TlbOrg::paper_private(),
            TlbOrg::paper_monolithic(4),
            TlbOrg::paper_distributed(),
            TlbOrg::paper_nocstar(),
            TlbOrg::paper_ideal(),
        ] {
            let report = run(4, org, 300);
            assert_eq!(report.accesses, 1200, "{}", report.org_label);
            assert!(report.cycles > 0);
        }
    }

    #[test]
    fn shared_orgs_hit_where_private_misses() {
        // Shared L2 capacity dedups the shared hot set, so the shared
        // organizations must eliminate a large fraction of L2 misses.
        let private = run(8, TlbOrg::paper_private(), 1500);
        let ideal = run(8, TlbOrg::paper_ideal(), 1500);
        assert!(private.l2.misses() > 0);
        assert!(
            ideal.l2.miss_rate() < private.l2.miss_rate(),
            "shared {} vs private {}",
            ideal.l2.miss_rate(),
            private.l2.miss_rate()
        );
    }

    #[test]
    fn nocstar_beats_distributed_on_runtime() {
        let distributed = run(16, TlbOrg::paper_distributed(), 800);
        let nocstar = run(16, TlbOrg::paper_nocstar(), 800);
        assert!(
            nocstar.cycles < distributed.cycles,
            "nocstar {} vs distributed {}",
            nocstar.cycles,
            distributed.cycles
        );
    }

    #[test]
    fn ideal_bounds_nocstar() {
        let nocstar = run(16, TlbOrg::paper_nocstar(), 800);
        let ideal = run(16, TlbOrg::paper_ideal(), 800);
        assert!(ideal.cycles <= nocstar.cycles);
    }

    #[test]
    fn network_stats_exist_only_for_networked_orgs() {
        assert!(run(4, TlbOrg::paper_private(), 100).network.is_none());
        assert!(run(4, TlbOrg::paper_nocstar(), 100).network.is_some());
    }

    #[test]
    fn concurrency_trackers_quiesce() {
        let report = run(4, TlbOrg::paper_nocstar(), 500);
        // Every begun L2 access ended; totals match between views.
        assert_eq!(
            report.chip_concurrency.total(),
            report.slice_concurrency.total()
        );
        assert!(report.chip_concurrency.total() > 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(4, TlbOrg::paper_nocstar(), 400);
        let b = run(4, TlbOrg::paper_nocstar(), 400);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.l2.misses(), b.l2.misses());
        assert_eq!(a.walks, b.walks);
    }

    fn run_with_recovery(
        cores: usize,
        org: TlbOrg,
        accesses: u64,
        plan: &str,
        policy: Option<RecoveryPolicy>,
    ) -> SimReport {
        let mut config = SystemConfig::new(cores, org);
        config.metrics = true;
        let workload = WorkloadAssignment::preset(&config, Preset::Redis);
        let mut sim = Simulation::new(config, workload)
            .with_faults(FaultPlan::parse(plan).expect("valid plan"));
        if let Some(p) = policy {
            sim = sim.with_recovery(p);
        }
        sim.run(accesses)
    }

    #[test]
    fn recovery_beats_open_loop_on_a_mesh_link_outage() {
        // The standard faultsweep outage: every link dead for cycles
        // 4000-9000. Open loop waits the window out; the closed loop
        // detours (no healthy detour exists here) and then escalates out
        // of the bounded retry far before the window clears.
        let plan = "link:*@4000-9000=off";
        let open = run_with_recovery(16, TlbOrg::paper_distributed(), 800, plan, None);
        let closed = run_with_recovery(
            16,
            TlbOrg::paper_distributed(),
            800,
            plan,
            Some(RecoveryPolicy::all()),
        );
        assert_eq!(open.accesses, closed.accesses);
        assert!(
            closed.translation_latency.mean() < open.translation_latency.mean(),
            "closed loop {} vs open loop {}",
            closed.translation_latency.mean(),
            open.translation_latency.mean()
        );
        assert!(closed.cycles < open.cycles);
        assert!(closed.metrics.counter("recovery.escalations").unwrap_or(0) > 0);
    }

    #[test]
    fn rehoming_beats_open_loop_on_a_hier_cluster_outage() {
        // One whole cluster offline for most of the run: open loop walks
        // every access homed there; re-homing redirects the set range to
        // the same residue slice in a surviving cluster, which warms up
        // and then hits.
        let plan = "cluster:1/4@1000-400000";
        let open = run_with_recovery(16, TlbOrg::paper_hier(4), 800, plan, None);
        let closed = run_with_recovery(
            16,
            TlbOrg::paper_hier(4),
            800,
            plan,
            Some(RecoveryPolicy::all()),
        );
        assert_eq!(open.accesses, closed.accesses);
        assert!(
            closed.translation_latency.mean() < open.translation_latency.mean(),
            "closed loop {} vs open loop {}",
            closed.translation_latency.mean(),
            open.translation_latency.mean()
        );
        assert!(closed.walks < open.walks, "re-homing must eliminate walks");
        let recovered = closed
            .metrics
            .counter("recovery.translations_recovered")
            .unwrap_or(0);
        assert!(recovered > 0, "no translation was served by a backup");
        assert!(
            closed
                .metrics
                .histogram("recovery.detect_to_recovered_cycles")
                .is_some_and(|h| h.count() > 0),
            "detect-to-recovered latency must be measured"
        );
    }

    #[test]
    fn rehomed_windows_close_with_a_coherent_handoff() {
        // A short offline window inside the run: entries the backup
        // absorbed are invalidated when traffic homes back, and both
        // directions are counted.
        let plan = "slice:3@500-4000";
        let r = run_with_recovery(
            8,
            TlbOrg::paper_distributed(),
            600,
            plan,
            Some(RecoveryPolicy::all()),
        );
        let activations = r
            .metrics
            .counter("recovery.rehome_activations")
            .unwrap_or(0);
        let homebacks = r.metrics.counter("recovery.rehome_homebacks").unwrap_or(0);
        assert!(activations > 0, "window never opened");
        assert!(homebacks > 0, "window never closed");
        assert!(homebacks <= activations);
    }

    #[test]
    fn recovery_off_reports_carry_no_recovery_metrics() {
        let plan = "slice:3@500-4000";
        let r = run_with_recovery(8, TlbOrg::paper_distributed(), 300, plan, None);
        assert!(r
            .metrics
            .samples()
            .iter()
            .all(|s| !s.name.starts_with("recovery.")));
    }

    #[test]
    fn recovery_runs_are_deterministic() {
        let mk = || {
            run_with_recovery(
                16,
                TlbOrg::paper_hier(4),
                400,
                "cluster:1/4@1000-100000; link:5@2000-3000=off",
                Some(RecoveryPolicy::all()),
            )
        };
        let a = mk().to_json().to_string();
        let b = mk().to_json().to_string();
        assert_eq!(a, b);
    }

    #[test]
    fn walk_policies_both_complete() {
        for policy in [WalkPolicy::AtRequester, WalkPolicy::AtRemote] {
            let mut config = SystemConfig::new(8, TlbOrg::paper_nocstar());
            config.walk_policy = policy;
            let workload = WorkloadAssignment::preset(&config, Preset::Gups);
            let report = Simulation::new(config, workload).run(300);
            assert_eq!(report.accesses, 2400);
            assert!(report.walks > 0);
        }
    }

    #[test]
    fn monolithic_smart_and_ideal_variants_run() {
        for net in [
            MonolithicNet::Mesh,
            MonolithicNet::Smart(8),
            MonolithicNet::Ideal,
        ] {
            let org = TlbOrg::Monolithic {
                entries_per_core: 1024,
                banks: 4,
                net,
                latency_override: None,
            };
            let report = run(8, org, 300);
            assert_eq!(report.accesses, 2400, "{net:?}");
        }
    }

    #[test]
    fn fixed_walk_latency_shrinks_translation_tail() {
        let mut slow = SystemConfig::new(4, TlbOrg::paper_private());
        slow.walk_latency = nocstar_mem::walker::WalkLatency::Fixed(Cycles::new(80));
        let mut fast = slow;
        fast.walk_latency = nocstar_mem::walker::WalkLatency::Fixed(Cycles::new(10));
        let run_cfg = |config: SystemConfig| {
            let w = WorkloadAssignment::preset(&config, Preset::Gups);
            Simulation::new(config, w).run(800)
        };
        let slow_r = run_cfg(slow);
        let fast_r = run_cfg(fast);
        assert!(slow_r.cycles > fast_r.cycles);
        assert!(slow_r.translation_latency.max() > fast_r.translation_latency.max());
    }

    #[test]
    fn prefetch_reduces_misses_on_strided_traffic() {
        // Sequential-ish cold accesses benefit from +/-2 prefetch.
        let base_cfg = SystemConfig::new(4, TlbOrg::paper_nocstar());
        let mut pf_cfg = base_cfg;
        pf_cfg.prefetch = nocstar_tlb::prefetch::PrefetchDepth::new(2).unwrap();
        let run_cfg = |config: SystemConfig| {
            let w = WorkloadAssignment::preset(&config, Preset::Xsbench);
            Simulation::new(config, w).run_measured(2_000, 3_000)
        };
        let without = run_cfg(base_cfg);
        let with = run_cfg(pf_cfg);
        assert!(
            with.walks <= without.walks,
            "prefetch should not add walks: {} vs {}",
            with.walks,
            without.walks
        );
    }

    #[test]
    fn smaller_l1_raises_l2_traffic() {
        let mut small = SystemConfig::new(4, TlbOrg::paper_private());
        small.l1_scale = 0.5;
        let big_cfg = {
            let mut c = small;
            c.l1_scale = 1.5;
            c
        };
        let run_cfg = |config: SystemConfig| {
            let w = WorkloadAssignment::preset(&config, Preset::Redis);
            Simulation::new(config, w).run(1_500)
        };
        let small_r = run_cfg(small);
        let big_r = run_cfg(big_cfg);
        assert!(
            small_r.l2.accesses() > big_r.l2.accesses(),
            "halved L1 must push more traffic to L2: {} vs {}",
            small_r.l2.accesses(),
            big_r.l2.accesses()
        );
    }

    #[test]
    fn round_trip_acquire_completes_with_shootdowns() {
        // Regression: invalidation/insert traffic in round-trip mode must
        // not deadlock the fabric.
        let org = TlbOrg::Nocstar {
            slice_entries: 920,
            hpc_max: 16,
            acquire: nocstar_noc::circuit::AcquireMode::RoundTrip,
            ideal_fabric: false,
        };
        let config = SystemConfig::new(8, org);
        let mut spec = Preset::Redis.spec();
        spec.remaps_per_million = 5_000.0;
        let workload = WorkloadAssignment::homogeneous(&config, spec);
        let r = Simulation::new(config, workload).run(1_200);
        assert_eq!(r.accesses, 8 * 1_200);
        assert!(r.shootdowns > 0);
    }

    #[test]
    fn metrics_do_not_change_simulated_time() {
        let plain_cfg = SystemConfig::new(4, TlbOrg::paper_nocstar());
        let mut observed_cfg = plain_cfg;
        observed_cfg.metrics = true;
        observed_cfg.trace_capacity = 1024;
        let run_cfg = |config: SystemConfig| {
            let w = WorkloadAssignment::preset(&config, Preset::Redis);
            Simulation::new(config, w).run(400)
        };
        let plain = run_cfg(plain_cfg);
        let observed = run_cfg(observed_cfg);
        assert_eq!(plain.cycles, observed.cycles);
        assert_eq!(plain.l2.misses(), observed.l2.misses());
        assert_eq!(plain.walks, observed.walks);
        // Off by default; populated when enabled.
        assert!(plain.metrics.is_empty());
        assert!(plain.trace.is_empty());
        assert!(!observed.metrics.is_empty());
        assert!(!observed.trace.is_empty());
    }

    #[test]
    fn enabled_metrics_cover_every_layer() {
        let mut config = SystemConfig::new(4, TlbOrg::paper_nocstar());
        config.metrics = true;
        let w = WorkloadAssignment::preset(&config, Preset::Redis);
        let r = Simulation::new(config, w).run(500);
        let m = &r.metrics;
        // TLB layer: per-slice occupancy and port-wait distribution.
        assert!(m.gauge("l2.0.occupancy").is_some_and(|o| o > 0));
        assert!(m.histogram("l2.0.queue_wait_cycles").is_some());
        // Memory layer: walk latency and PWC hits.
        assert!(m
            .histogram("mem.walk_latency_cycles")
            .is_some_and(|h| h.count() == r.walks));
        assert!(m.histogram("mem.pwc_hits_per_walk").is_some());
        // Interconnect layer: arbitration and per-link totals.
        assert!(m.counter("noc.delivered").is_some_and(|d| d > 0));
        assert!(m.counter("noc.grants").is_some_and(|g| g > 0));
        assert!(m.counter("noc.retries").is_some());
        assert!(m.counter("noc.link.0.busy_cycles").is_some());
        // Core layer: stall breakdown attributed to cores.
        let stalled: u64 = (0..4)
            .map(|c| m.counter(&format!("core.{c}.stall.slice_cycles")).unwrap())
            .sum();
        assert!(stalled > 0);
    }

    #[test]
    fn trace_records_the_translation_lifecycle() {
        let mut config = SystemConfig::new(4, TlbOrg::paper_nocstar());
        config.trace_capacity = 1 << 16;
        let w = WorkloadAssignment::preset(&config, Preset::Redis);
        let r = Simulation::new(config, w).run(300);
        assert!(!r.trace.is_empty());
        // Records come back oldest-first in simulated-time order.
        assert!(r.trace.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        let kinds: std::collections::HashSet<u16> = r.trace.iter().map(|t| t.kind).collect();
        for kind in [
            trace_kind::ISSUE,
            trace_kind::SLICE_DONE,
            trace_kind::WALK_DONE,
            trace_kind::TRANSLATION_DONE,
        ] {
            assert!(kinds.contains(&kind), "missing trace kind {kind}");
        }
    }

    #[test]
    fn tiny_trace_ring_stays_bounded_and_counts_drops() {
        let mut config = SystemConfig::new(4, TlbOrg::paper_nocstar());
        config.trace_capacity = 16;
        let w = WorkloadAssignment::preset(&config, Preset::Redis);
        let r = Simulation::new(config, w).run(500);
        assert_eq!(r.trace.len(), 16);
        assert!(r.trace_dropped > 0);
    }

    #[test]
    fn shootdowns_happen_for_remapping_workloads() {
        let mut config = SystemConfig::new(4, TlbOrg::paper_nocstar());
        config.seed = 7;
        let mut spec = Preset::Redis.spec();
        spec.remaps_per_million = 20_000.0;
        let workload = WorkloadAssignment::homogeneous(&config, spec);
        let report = Simulation::new(config, workload).run(2000);
        assert!(report.shootdowns > 0);
    }
}
