//! Mapping workloads onto hardware threads.

use crate::config::SystemConfig;
use nocstar_types::{Asid, ThreadId};
use nocstar_workloads::file_trace::FileTrace;
use nocstar_workloads::microbench::{SliceHammerTrace, StormTrace};
use nocstar_workloads::multiprog::Mix;
use nocstar_workloads::nct::{self, NctError};
use nocstar_workloads::preset::Preset;
use nocstar_workloads::spec::WorkloadSpec;
use nocstar_workloads::trace::TraceSource;
use std::path::Path;

/// One trace per hardware thread (index = core * smt + context).
pub struct WorkloadAssignment {
    traces: Vec<Box<dyn TraceSource>>,
    label: String,
}

impl WorkloadAssignment {
    /// A multi-threaded run of one workload: every hardware thread runs a
    /// thread of the same application in one shared address space.
    pub fn homogeneous(config: &SystemConfig, spec: WorkloadSpec) -> Self {
        let traces = (0..config.threads())
            .map(|t| {
                Box::new(spec.trace(Asid::new(1), ThreadId::new(t), config.seed, config.thp))
                    as Box<dyn TraceSource>
            })
            .collect();
        Self {
            traces,
            label: spec.name.to_string(),
        }
    }

    /// A preset workload (see [`homogeneous`](Self::homogeneous)).
    pub fn preset(config: &SystemConfig, preset: Preset) -> Self {
        Self::homogeneous(config, preset.spec())
    }

    /// A multiprogrammed mix: four applications, each in its own address
    /// space, with [`Mix::THREADS_PER_APP`] threads apiece, laid out
    /// app-major over the chip's hardware threads.
    ///
    /// # Panics
    ///
    /// Panics unless the chip has exactly `4 x THREADS_PER_APP` hardware
    /// threads (the paper's 32-core setup).
    pub fn mix(config: &SystemConfig, mix: Mix) -> Self {
        let needed = 4 * Mix::THREADS_PER_APP;
        assert_eq!(
            config.threads(),
            needed,
            "mixes need exactly {needed} hardware threads"
        );
        let mut traces: Vec<Box<dyn TraceSource>> = Vec::with_capacity(needed);
        for (app_index, preset) in mix.apps.iter().enumerate() {
            let spec = preset.spec();
            for t in 0..Mix::THREADS_PER_APP {
                traces.push(Box::new(spec.trace(
                    Asid::new(app_index as u16 + 1),
                    ThreadId::new(t),
                    config.seed,
                    config.thp,
                )));
            }
        }
        Self {
            traces,
            label: mix.to_string(),
        }
    }

    /// The TLB-storm stress (Fig 19): every thread runs the workload under
    /// aggressive context switching and superpage promote/demote churn.
    pub fn storm(
        config: &SystemConfig,
        preset: Preset,
        ctx_switch_interval: u64,
        churn_interval: u64,
    ) -> Self {
        let spec = preset.spec();
        let traces = (0..config.threads())
            .map(|t| {
                let inner = spec.trace(Asid::new(1), ThreadId::new(t), config.seed, config.thp);
                Box::new(StormTrace::new(inner, ctx_switch_interval, churn_interval))
                    as Box<dyn TraceSource>
            })
            .collect();
        Self {
            traces,
            label: format!("{}+storm", spec.name),
        }
    }

    /// The slice-congestion stress (§V): threads on cores `0..N-1` hammer
    /// the victim slice on core `N-1`; the victim core runs the preset.
    pub fn slice_hammer(config: &SystemConfig, victim_preset: Preset, pages: u64) -> Self {
        let cores = config.cores;
        let victim_slice = cores - 1;
        let spec = victim_preset.spec();
        let traces = (0..config.threads())
            .map(|t| {
                let core = t / config.smt;
                if core == victim_slice {
                    Box::new(spec.trace(Asid::new(1), ThreadId::new(t), config.seed, config.thp))
                        as Box<dyn TraceSource>
                } else {
                    Box::new(SliceHammerTrace::new(
                        Asid::new(2),
                        ThreadId::new(t),
                        victim_slice,
                        cores,
                        pages,
                        config.seed,
                    )) as Box<dyn TraceSource>
                }
            })
            .collect();
        Self {
            traces,
            label: format!("{}+slice-hammer", spec.name),
        }
    }

    /// Replays a captured NCT trace file (see `TRACE_FORMAT.md`): every
    /// hardware thread streams its own copy of one of the file's thread
    /// streams, with bounded memory per thread.
    ///
    /// Hardware thread `t` replays file stream `t % file_threads`, so a
    /// file captured for exactly `config.threads()` threads replays
    /// one-to-one — with matching seed, organization and THP setting the
    /// resulting `SimReport` is byte-identical to the generator-driven
    /// run it captured (policed by `tests/trace_replay.rs`) — while a
    /// smaller capture (e.g. a single-thread trace) still drives any
    /// chip size by reuse. The report label is the label stored in the
    /// file header.
    ///
    /// # Errors
    ///
    /// Any [`NctError`] from opening or validating the file; every
    /// thread's section is fully validated (checksums included) before
    /// the simulation starts.
    pub fn from_trace_file(
        config: &SystemConfig,
        path: impl AsRef<Path>,
    ) -> Result<Self, NctError> {
        let path = path.as_ref();
        let header = nct::peek_header(path)?;
        let traces = (0..config.threads())
            .map(|t| {
                let stream = (t % usize::from(header.thread_count)) as u16;
                FileTrace::open(path, stream).map(|ft| Box::new(ft) as Box<dyn TraceSource>)
            })
            .collect::<Result<Vec<_>, NctError>>()?;
        Ok(Self {
            traces,
            label: header.label,
        })
    }

    /// A caller-assembled assignment (one trace per hardware thread).
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty.
    pub fn custom(traces: Vec<Box<dyn TraceSource>>, label: impl Into<String>) -> Self {
        assert!(!traces.is_empty(), "assignment needs at least one thread");
        Self {
            traces,
            label: label.into(),
        }
    }

    /// Number of hardware threads covered.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// True when no threads are assigned (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Human-readable label for reports.
    pub fn label(&self) -> &str {
        &self.label
    }

    pub(crate) fn into_traces(self) -> Vec<Box<dyn TraceSource>> {
        self.traces
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TlbOrg;

    #[test]
    fn homogeneous_covers_all_threads_in_one_asid() {
        let cfg = SystemConfig::new(8, TlbOrg::paper_private());
        let wa = WorkloadAssignment::preset(&cfg, Preset::Redis);
        assert_eq!(wa.len(), 8);
        assert_eq!(wa.label(), "redis");
        for t in wa.into_traces() {
            assert_eq!(t.asid(), Asid::new(1));
        }
    }

    #[test]
    fn smt_multiplies_thread_count() {
        let mut cfg = SystemConfig::new(8, TlbOrg::paper_private());
        cfg.smt = 2;
        let wa = WorkloadAssignment::preset(&cfg, Preset::Gups);
        assert_eq!(wa.len(), 16);
    }

    #[test]
    fn mixes_use_four_address_spaces() {
        let cfg = SystemConfig::new(32, TlbOrg::paper_nocstar());
        let mix = nocstar_workloads::multiprog::all_mixes()[0];
        let wa = WorkloadAssignment::mix(&cfg, mix);
        assert_eq!(wa.len(), 32);
        let asids: std::collections::HashSet<u16> =
            wa.into_traces().iter().map(|t| t.asid().value()).collect();
        assert_eq!(asids.len(), 4);
    }

    #[test]
    #[should_panic(expected = "exactly 32")]
    fn mixes_demand_32_threads() {
        let cfg = SystemConfig::new(16, TlbOrg::paper_nocstar());
        let mix = nocstar_workloads::multiprog::all_mixes()[0];
        let _ = WorkloadAssignment::mix(&cfg, mix);
    }

    #[test]
    fn slice_hammer_isolates_the_victim() {
        let cfg = SystemConfig::new(8, TlbOrg::paper_nocstar());
        let wa = WorkloadAssignment::slice_hammer(&cfg, Preset::Canneal, 64);
        let traces = wa.into_traces();
        assert_eq!(traces[7].asid(), Asid::new(1)); // victim runs canneal
        for t in &traces[..7] {
            assert_eq!(t.asid(), Asid::new(2));
        }
    }

    #[test]
    fn custom_assignments_carry_their_label() {
        let cfg = SystemConfig::new(2, TlbOrg::paper_private());
        let spec = Preset::Olio.spec();
        let traces: Vec<Box<dyn TraceSource>> = (0..2)
            .map(|t| {
                Box::new(spec.trace(Asid::new(9), ThreadId::new(t), 1, false))
                    as Box<dyn TraceSource>
            })
            .collect();
        let wa = WorkloadAssignment::custom(traces, "bespoke");
        assert_eq!(wa.label(), "bespoke");
        assert_eq!(wa.len(), cfg.threads());
        assert!(!wa.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn empty_custom_assignment_rejected() {
        let _ = WorkloadAssignment::custom(Vec::new(), "empty");
    }

    fn temp_nct(name: &str, threads: u16, events_per_thread: usize) -> std::path::PathBuf {
        use nocstar_workloads::nct::NctFile;
        use nocstar_workloads::recorded::RecordedTrace;
        let spec = Preset::Redis.spec();
        let traces: Vec<RecordedTrace> = (0..threads)
            .map(|t| {
                let mut src = spec.trace(Asid::new(1), ThreadId::new(usize::from(t)), 7, true);
                RecordedTrace::capture(&mut src, events_per_thread)
            })
            .collect();
        let file = NctFile::from_recorded(&traces, "redis").unwrap();
        let path =
            std::env::temp_dir().join(format!("nocstar_assignment_{}_{name}", std::process::id()));
        file.save(&path).unwrap();
        path
    }

    #[test]
    fn trace_file_assignment_takes_label_and_threads_from_the_file() {
        let path = temp_nct("label.nct", 2, 50);
        let cfg = SystemConfig::new(4, TlbOrg::paper_nocstar());
        let wa = WorkloadAssignment::from_trace_file(&cfg, &path).unwrap();
        assert_eq!(wa.label(), "redis");
        assert_eq!(wa.len(), 4); // 4 hw threads reuse the 2 file streams
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn trace_file_assignment_surfaces_structured_errors() {
        let cfg = SystemConfig::new(2, TlbOrg::paper_private());
        let err = match WorkloadAssignment::from_trace_file(&cfg, "/no/such/file.nct") {
            Ok(_) => panic!("opening a missing file should fail"),
            Err(e) => e,
        };
        assert!(matches!(err, nocstar_workloads::nct::NctError::Io(_)));
    }

    #[test]
    fn storm_label_mentions_the_storm() {
        let cfg = SystemConfig::new(4, TlbOrg::paper_nocstar());
        let wa = WorkloadAssignment::storm(&cfg, Preset::Gups, 1000, 2000);
        assert!(wa.label().contains("storm"));
        assert_eq!(wa.len(), 4);
    }
}
