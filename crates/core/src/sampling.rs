//! Per-window samples and whole-trace estimates for sampled replay.
//!
//! Normative spec: `SAMPLING.md` at the repository root. The simulation
//! loop harvests one `WindowSample` per measurement window
//! (`sim.rs`); this module reduces those samples to the per-access-rate
//! estimates of `SAMPLING.md §3` and carries the [`SamplingReport`]
//! section that [`SimReport`](crate::report::SimReport) emits for
//! sampled runs only — exact-mode reports never contain it, which keeps
//! their goldens byte-identical.

use nocstar_energy::account::EnergyAccount;
use nocstar_json::Json;
use nocstar_noc::NocStats;
use nocstar_stats::counter::HitMiss;
use nocstar_stats::histogram::ConcurrencyBins;
use nocstar_stats::interval::Interval;
use nocstar_stats::latency::LatencyRecorder;

/// Everything one measurement window measured, captured at leg end
/// (`SAMPLING.md §1`, "Harvest").
#[derive(Debug, Clone)]
pub(crate) struct WindowSample {
    /// Per-thread measured cycles (warmup crossing → finish).
    pub(crate) durations: Vec<u64>,
    /// Window runtime: the max of `durations`.
    pub(crate) runtime: u64,
    pub(crate) l1: HitMiss,
    pub(crate) l2: HitMiss,
    pub(crate) per_structure: Vec<HitMiss>,
    pub(crate) walks: u64,
    pub(crate) walks_llc_or_mem: u64,
    pub(crate) shootdowns: u64,
    pub(crate) flushes: u64,
    pub(crate) translation_latency: LatencyRecorder,
    pub(crate) energy: EnergyAccount,
    pub(crate) chip_concurrency: ConcurrencyBins,
    pub(crate) slice_concurrency: ConcurrencyBins,
    pub(crate) network: Option<NocStats>,
}

/// One estimated metric: its per-window samples and the reduced
/// [`Interval`] (`SAMPLING.md §3`).
#[derive(Debug, Clone)]
pub struct MetricEstimate {
    /// Metric name (the `SAMPLING.md §3` estimand table).
    pub name: &'static str,
    /// The per-window values the interval was estimated from.
    pub per_window: Vec<f64>,
    /// Mean, standard error and 95 % confidence interval.
    pub interval: Interval,
}

impl MetricEstimate {
    fn of(name: &'static str, per_window: Vec<f64>) -> Self {
        let interval = Interval::of(&per_window);
        Self {
            name,
            per_window,
            interval,
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("mean", Json::F64(self.interval.mean())),
            ("stderr", Json::F64(self.interval.stderr())),
            (
                "ci95",
                Json::Arr(vec![
                    Json::F64(self.interval.lo()),
                    Json::F64(self.interval.hi()),
                ]),
            ),
            ("degenerate", Json::Bool(self.interval.is_degenerate())),
            (
                "per_window",
                Json::Arr(self.per_window.iter().map(|&v| Json::F64(v)).collect()),
            ),
        ])
    }
}

/// The `sampling` section of a sampled run's report (`SAMPLING.md §4`).
#[derive(Debug, Clone)]
pub struct SamplingReport {
    /// Canonical spec echo, `<period>:<window>:<warmup>@<seed>`.
    pub spec: String,
    /// Accesses per thread from one window start to the next.
    pub period: u64,
    /// Measured accesses per thread per window.
    pub window: u64,
    /// Detailed-warmup accesses per thread per window.
    pub warmup: u64,
    /// The placement seed.
    pub seed: u64,
    /// The first leg's fast-forward quota, `splitmix64(seed) mod (slack+1)`.
    pub offset: u64,
    /// Measurement windows completed.
    pub windows: u64,
    /// The replayed span, in accesses per thread.
    pub span_accesses_per_thread: u64,
    /// Accesses (all threads) consumed functionally, outside the
    /// cycle-accurate core.
    pub accesses_fast_forwarded: u64,
    /// Accesses (all threads) that entered the cycle-accurate core
    /// (warmup + window per leg).
    pub accesses_detailed: u64,
    /// Per-metric whole-trace estimates, in the `SAMPLING.md §3` table
    /// order.
    pub estimates: Vec<MetricEstimate>,
}

impl SamplingReport {
    /// Serializes the section; estimates keep table order, so equal runs
    /// produce byte-identical text.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("spec", Json::str(self.spec.as_str())),
            ("period", Json::U64(self.period)),
            ("window", Json::U64(self.window)),
            ("warmup", Json::U64(self.warmup)),
            ("seed", Json::U64(self.seed)),
            ("offset", Json::U64(self.offset)),
            ("windows", Json::U64(self.windows)),
            (
                "span_accesses_per_thread",
                Json::U64(self.span_accesses_per_thread),
            ),
            (
                "accesses_fast_forwarded",
                Json::U64(self.accesses_fast_forwarded),
            ),
            ("accesses_detailed", Json::U64(self.accesses_detailed)),
            (
                "estimates",
                Json::Obj(
                    self.estimates
                        .iter()
                        .map(|e| (e.name.to_string(), e.to_json()))
                        .collect(),
                ),
            ),
        ])
    }

    /// The estimate for `name`, if present.
    pub fn estimate(&self, name: &str) -> Option<&MetricEstimate> {
        self.estimates.iter().find(|e| e.name == name)
    }
}

/// Reduces the window samples to the `SAMPLING.md §3` estimand table.
/// Empty when no window completed (a partial/aborted sampled run).
pub(crate) fn estimates(
    windows: &[WindowSample],
    window_quota: u64,
    threads: usize,
) -> Vec<MetricEstimate> {
    if windows.is_empty() {
        return Vec::new();
    }
    let measured = (window_quota * threads as u64) as f64;
    let per = |f: &dyn Fn(&WindowSample) -> f64| windows.iter().map(f).collect::<Vec<f64>>();
    vec![
        MetricEstimate::of(
            "cycles_per_access",
            per(&|w| w.runtime as f64 / window_quota as f64),
        ),
        MetricEstimate::of("l1_miss_rate", per(&|w| w.l1.miss_rate())),
        MetricEstimate::of("l2_miss_rate", per(&|w| w.l2.miss_rate())),
        MetricEstimate::of("walks_per_access", per(&|w| w.walks as f64 / measured)),
        MetricEstimate::of(
            "walks_llc_or_mem_per_access",
            per(&|w| w.walks_llc_or_mem as f64 / measured),
        ),
        MetricEstimate::of(
            "shootdowns_per_access",
            per(&|w| w.shootdowns as f64 / measured),
        ),
        MetricEstimate::of("flushes_per_access", per(&|w| w.flushes as f64 / measured)),
        MetricEstimate::of(
            "translation_latency_mean",
            per(&|w| w.translation_latency.mean()),
        ),
        MetricEstimate::of(
            "energy_pj_per_access",
            per(&|w| w.energy.total_pj() / measured),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(runtime: u64, walks: u64) -> WindowSample {
        WindowSample {
            durations: vec![runtime],
            runtime,
            l1: HitMiss::new(),
            l2: HitMiss::new(),
            per_structure: Vec::new(),
            walks,
            walks_llc_or_mem: 0,
            shootdowns: 0,
            flushes: 0,
            translation_latency: LatencyRecorder::new(),
            energy: EnergyAccount::default(),
            chip_concurrency: ConcurrencyBins::new(),
            slice_concurrency: ConcurrencyBins::new(),
            network: None,
        }
    }

    #[test]
    fn estimates_cover_the_estimand_table_in_order() {
        let windows = vec![window(600, 12), window(660, 9)];
        let ests = estimates(&windows, 60, 1);
        let names: Vec<&str> = ests.iter().map(|e| e.name).collect();
        assert_eq!(
            names,
            vec![
                "cycles_per_access",
                "l1_miss_rate",
                "l2_miss_rate",
                "walks_per_access",
                "walks_llc_or_mem_per_access",
                "shootdowns_per_access",
                "flushes_per_access",
                "translation_latency_mean",
                "energy_pj_per_access",
            ]
        );
        let cpa = &ests[0];
        assert_eq!(cpa.per_window, vec![10.0, 11.0]);
        assert!((cpa.interval.mean() - 10.5).abs() < 1e-12);
        let wpa = &ests[3];
        assert_eq!(wpa.per_window, vec![0.2, 0.15]);
    }

    #[test]
    fn no_windows_means_no_estimates() {
        assert!(estimates(&[], 60, 4).is_empty());
    }

    #[test]
    fn json_section_is_deterministic_and_ordered() {
        let windows = vec![window(600, 12), window(660, 9), window(630, 10)];
        let report = SamplingReport {
            spec: "1000:60:30@7".into(),
            period: 1000,
            window: 60,
            warmup: 30,
            seed: 7,
            offset: 123,
            windows: 3,
            span_accesses_per_thread: 3200,
            accesses_fast_forwarded: 2930,
            accesses_detailed: 270,
            estimates: estimates(&windows, 60, 1),
        };
        let a = report.to_json().to_string();
        let b = report.to_json().to_string();
        assert_eq!(a, b);
        let parsed = Json::parse(&a).expect("valid JSON");
        assert_eq!(parsed.get("windows").and_then(Json::as_u64), Some(3));
        let est = parsed
            .get("estimates")
            .and_then(|e| e.get("cycles_per_access"))
            .expect("cycles_per_access estimate");
        assert!(est.get("ci95").is_some());
        assert_eq!(est.get("degenerate"), Some(&Json::Bool(false)));
        assert_eq!(
            report.estimate("l1_miss_rate").map(|e| e.name),
            Some("l1_miss_rate")
        );
    }
}
