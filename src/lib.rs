//! # NOCSTAR — scalable distributed last-level TLBs over a low-latency
//! # interconnect
//!
//! A full reproduction of *"Scalable Distributed Last-Level TLBs Using
//! Low-Latency Interconnects"* (MICRO 2018) as a Rust library: the
//! NOCSTAR distributed shared L2 TLB and its circuit-switched single-cycle
//! fabric, the baselines it is compared against (private L2 TLBs,
//! monolithic banked shared TLBs over mesh/SMART NoCs, mesh-connected
//! distributed TLBs), and the entire simulation substrate they run on
//! (multi-page-size TLB hierarchies, caches, radix page tables and
//! walkers, synthetic workloads, an energy model).
//!
//! This crate is a facade: it re-exports the workspace's crates and offers
//! a [`prelude`] for the common experiment workflow.
//!
//! ## Quickstart
//!
//! Compare NOCSTAR against the private-L2-TLB baseline on a 16-core chip:
//!
//! ```
//! use nocstar::prelude::*;
//!
//! let workload = Preset::Gups;
//! let baseline_cfg = SystemConfig::new(16, TlbOrg::paper_private());
//! let baseline = Simulation::new(
//!     baseline_cfg,
//!     WorkloadAssignment::preset(&baseline_cfg, workload),
//! )
//! .run(300);
//!
//! let nocstar_cfg = SystemConfig::new(16, TlbOrg::paper_nocstar());
//! let nocstar = Simulation::new(
//!     nocstar_cfg,
//!     WorkloadAssignment::preset(&nocstar_cfg, workload),
//! )
//! .run(300);
//!
//! let speedup = nocstar.speedup_vs(&baseline);
//! assert!(speedup > 0.5); // see the bench harness for the paper's numbers
//! ```
//!
//! ## Crate map
//!
//! | Re-export | Contents |
//! |---|---|
//! | [`types`] | Addresses, page sizes, ids, cycles, mesh geometry |
//! | [`stats`] | Counters, histograms, concurrency tracking, tables |
//! | [`tlb`] | Set-associative TLBs, L1/L2 structures, SRAM model, prefetch, shootdowns |
//! | [`mem`] | Caches, physical memory, page tables, the page walker |
//! | [`noc`] | Mesh, SMART, and the NOCSTAR circuit-switched fabric |
//! | [`faults`] | Deterministic fault injection, structured sim errors, diagnostic snapshots |
//! | [`energy`] | Event-based energy/area model (Fig 9, Fig 11b) |
//! | [`workloads`] | The 11 paper workloads, mixes, stress microbenchmarks |
//! | [`core`] | The full-system simulator and its configuration |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use nocstar_core as core;
pub use nocstar_energy as energy;
pub use nocstar_faults as faults;
pub use nocstar_mem as mem;
pub use nocstar_noc as noc;
pub use nocstar_stats as stats;
pub use nocstar_tlb as tlb;
pub use nocstar_types as types;
pub use nocstar_workloads as workloads;

/// The common experiment vocabulary in one import.
pub mod prelude {
    pub use nocstar_core::assignment::WorkloadAssignment;
    pub use nocstar_core::config::{MonolithicNet, SystemConfig, TlbOrg, WalkPolicy};
    pub use nocstar_core::report::SimReport;
    pub use nocstar_core::sampling::{MetricEstimate, SamplingReport};
    pub use nocstar_core::sim::{SimAbort, Simulation};
    pub use nocstar_faults::{FaultPlan, RecoveryPolicy, SimError};
    pub use nocstar_mem::walker::WalkLatency;
    pub use nocstar_noc::circuit::AcquireMode;
    pub use nocstar_noc::hier::{InterKind, IntraKind};
    pub use nocstar_stats::interval::Interval;
    pub use nocstar_stats::summary::Summary;
    pub use nocstar_stats::table::Table;
    pub use nocstar_tlb::prefetch::PrefetchDepth;
    pub use nocstar_tlb::shootdown::LeaderPolicy;
    pub use nocstar_types::time::{Cycle, Cycles};
    pub use nocstar_types::{Asid, CoreId, MeshShape, PageSize, ThreadId, VirtAddr};
    pub use nocstar_workloads::file_trace::FileTrace;
    pub use nocstar_workloads::multiprog::{all_mixes, Mix};
    pub use nocstar_workloads::nct::{NctError, NctFile};
    pub use nocstar_workloads::preset::Preset;
    pub use nocstar_workloads::recorded::RecordedTrace;
    pub use nocstar_workloads::sample::SampleSpec;
    pub use nocstar_workloads::spec::WorkloadSpec;
}
