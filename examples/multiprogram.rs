//! Multiprogrammed mixes: run one 4-application combination (8 threads
//! each, own address spaces) on a 32-core chip across the TLB
//! organizations, reporting overall throughput and the worst-off
//! application — the Fig 18 experiment for a single mix.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example multiprogram [mix-index 0..329] [accesses]
//! ```

use nocstar::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let index: usize = args.next().and_then(|i| i.parse().ok()).unwrap_or(0);
    let accesses: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(8_000);
    let mixes = all_mixes();
    let mix = mixes[index % mixes.len()];
    println!("mix #{index}: {mix}\n");

    let cores = 32;
    let run = |org: TlbOrg| {
        let config = SystemConfig::new(cores, org);
        let workload = WorkloadAssignment::mix(&config, mix);
        Simulation::new(config, workload).run_measured(accesses / 2, accesses)
    };
    let baseline = run(TlbOrg::paper_private());
    let base_apps = baseline.app_finish_times(Mix::THREADS_PER_APP);

    let mut table = Table::new([
        "organization",
        "throughput speedup",
        "min app speedup",
        "per-app speedups",
    ]);
    for org in [
        TlbOrg::paper_monolithic(cores),
        TlbOrg::paper_distributed(),
        TlbOrg::paper_nocstar(),
    ] {
        let r = run(org);
        let apps = r.app_finish_times(Mix::THREADS_PER_APP);
        let per_app: Vec<f64> = base_apps
            .iter()
            .zip(&apps)
            .map(|(&b, &a)| b as f64 / a.max(1) as f64)
            .collect();
        let min = per_app.iter().copied().fold(f64::INFINITY, f64::min);
        table.row([
            r.org_label.clone(),
            format!("{:.3}", r.throughput() / baseline.throughput()),
            format!("{min:.3}"),
            per_app
                .iter()
                .zip(mix.apps.iter())
                .map(|(s, p)| format!("{p}:{s:.2}"))
                .collect::<Vec<_>>()
                .join(" "),
        ]);
    }
    println!("{table}");
}
