//! Capacity study: how much of the private-L2-TLB miss traffic a shared
//! last-level TLB absorbs as the chip scales (the paper's Fig 2 question),
//! and what that does to page-walk counts.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example capacity_study [workload] [accesses]
//! ```

use nocstar::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let preset = args
        .next()
        .and_then(|n| Preset::ALL.iter().copied().find(|p| p.name() == n))
        .unwrap_or(Preset::Canneal);
    let accesses: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(15_000);
    let warmup = accesses / 2;

    println!("workload: {preset}, measured accesses/thread: {accesses}\n");
    let mut table = Table::new([
        "cores",
        "private L2 miss %",
        "shared L2 miss %",
        "misses eliminated %",
        "walks (private)",
        "walks (shared)",
        "walks to LLC/DRAM %",
    ]);
    for cores in [8usize, 16, 32, 64] {
        let run = |org: TlbOrg| {
            let config = SystemConfig::new(cores, org);
            let workload = WorkloadAssignment::preset(&config, preset);
            Simulation::new(config, workload).run_measured(warmup, accesses)
        };
        let private = run(TlbOrg::paper_private());
        let shared = run(TlbOrg::paper_ideal());
        table.row([
            cores.to_string(),
            format!("{:.1}", private.l2.miss_rate() * 100.0),
            format!("{:.1}", shared.l2.miss_rate() * 100.0),
            format!("{:.0}", shared.misses_eliminated_vs(&private)),
            private.walks.to_string(),
            shared.walks.to_string(),
            format!("{:.0}", private.walk_llc_fraction() * 100.0),
        ]);
    }
    println!("{table}");
    println!("The shared TLB dedups the hot set and pools capacity, so the");
    println!("eliminated-miss fraction grows with core count (paper Fig 2).");
}
