//! Quickstart: compare the four L2 TLB organizations of the paper on one
//! workload and print their speedups over private L2 TLBs.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart [workload] [cores] [accesses]
//! ```
//!
//! e.g. `cargo run --release --example quickstart gups 16 20000`.

use nocstar::prelude::*;

fn parse_preset(name: &str) -> Option<Preset> {
    Preset::ALL.iter().copied().find(|p| p.name() == name)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let preset = args
        .next()
        .map(|n| parse_preset(&n).unwrap_or_else(|| die(&n)))
        .unwrap_or(Preset::Gups);
    let cores: usize = args.next().and_then(|c| c.parse().ok()).unwrap_or(16);
    let accesses: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(10_000);

    println!("workload: {preset}, cores: {cores}, accesses/thread: {accesses}\n");

    let run = |org: TlbOrg| -> SimReport {
        let config = SystemConfig::new(cores, org);
        let workload = WorkloadAssignment::preset(&config, preset);
        Simulation::new(config, workload).run(accesses)
    };

    let baseline = run(TlbOrg::paper_private());
    println!("baseline (private L2 TLBs):\n{baseline}\n");

    let mut table = Table::new([
        "organization",
        "cycles",
        "speedup",
        "L2 miss %",
        "mean xlat",
    ]);
    for org in [
        TlbOrg::paper_private(),
        TlbOrg::paper_monolithic(cores),
        TlbOrg::paper_distributed(),
        TlbOrg::paper_nocstar(),
        TlbOrg::paper_ideal(),
    ] {
        let report = if org == TlbOrg::paper_private() {
            baseline.clone()
        } else {
            run(org)
        };
        table.row([
            report.org_label.clone(),
            report.cycles.to_string(),
            format!("{:.3}", report.speedup_vs(&baseline)),
            format!("{:.1}", report.l2.miss_rate() * 100.0),
            format!("{:.1}", report.translation_latency.mean()),
        ]);
    }
    println!("{table}");
    println!("(mean xlat = average L1-miss translation latency in cycles)");
}

fn die(name: &str) -> ! {
    eprintln!("unknown workload '{name}'. Available:");
    for p in Preset::ALL {
        eprintln!("  {p}");
    }
    std::process::exit(2);
}
