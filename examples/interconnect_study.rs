//! Interconnect study: drive the three network models directly with
//! synthetic uniform-random traffic (no TLBs involved) and compare their
//! latency under increasing load — the experiment behind Fig 11(c) — plus
//! a look at NOCSTAR's round-trip vs one-way acquire modes.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example interconnect_study [cores] [cycles]
//! ```

use nocstar::noc::circuit::{AcquireMode, CircuitFabric};
use nocstar::noc::mesh::MeshNoc;
use nocstar::noc::smart::SmartNoc;
use nocstar::noc::traffic::run_uniform_random;
use nocstar::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let cores: usize = args.next().and_then(|c| c.parse().ok()).unwrap_or(64);
    let cycles: u64 = args.next().and_then(|c| c.parse().ok()).unwrap_or(4_000);
    let mesh = MeshShape::square_for(cores);
    println!("{mesh}, {cycles} cycles of injection per rate\n");

    let mut table = Table::new([
        "injection rate",
        "NOCSTAR",
        "SMART(8)",
        "mesh",
        "NOCSTAR no-contention %",
    ]);
    for rate in [0.01, 0.05, 0.1, 0.2, 0.3] {
        let mut fabric = CircuitFabric::new(mesh, 16, AcquireMode::OneWay);
        let nocstar = run_uniform_random(&mut fabric, mesh, rate, cycles, 7);
        let mut smart = SmartNoc::new(mesh, 8);
        let smart_r = run_uniform_random(&mut smart, mesh, rate, cycles, 7);
        let mut multihop = MeshNoc::contended(mesh);
        let mesh_r = run_uniform_random(&mut multihop, mesh, rate, cycles, 7);
        table.row([
            format!("{rate}"),
            format!("{:.2}", nocstar.mean_latency),
            format!("{:.2}", smart_r.mean_latency),
            format!("{:.2}", mesh_r.mean_latency),
            format!("{:.0}", nocstar.no_contention_fraction * 100.0),
        ]);
    }
    println!("{table}");

    println!("HPCmax sensitivity at rate 0.05 (pipelining long paths):");
    for hpc in [4usize, 8, 16] {
        let mut fabric = CircuitFabric::new(mesh, hpc, AcquireMode::OneWay);
        let report = run_uniform_random(&mut fabric, mesh, 0.05, cycles, 7);
        println!(
            "  HPCmax={hpc:2}  mean latency {:.2} cycles ({:.0}% uncontended)",
            report.mean_latency,
            report.no_contention_fraction * 100.0
        );
    }
}
