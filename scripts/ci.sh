#!/usr/bin/env bash
# Local CI gate for the workspace. Run from anywhere; it cd's to the
# repo root. Fails fast on the first broken step.
#
# Two modes (ROADMAP "CI timing budget"):
#
#   ci.sh             fast PR gate: fmt + determinism lint + clippy +
#                     build + tier-1 tests (including the NCT trace
#                     round-trip/golden-fixture suite and the
#                     hierarchical-fabric unit/property/lookahead
#                     suites). Target: a few minutes.
#   ci.sh --nightly   everything above plus the slow sweeps: chaos
#                     property suite (including the 1024-core
#                     cluster-outage run), the 1024-core cascading
#                     recovery-chaos smoke and the closed-loop
#                     recovery-latency study, the 512/1024-core hier-vs-mesh
#                     scale-up claim and smoke, fault-sweep smoke, the
#                     full golden-report determinism sweep, the full
#                     domain-parallel sweep (domains 2/4/8 on every
#                     fabric, plus the perf.sh wall-clock gate), and the
#                     end-to-end trace-replay equivalence check
#                     (record -> replay -> byte-for-byte report diff).
#
# The fast gate already proves 2-domain invariance: tier-1 tests include
# determinism.rs's two_domain_runs_are_byte_identical_to_sequential.
#
# The lint step writes JSON + SARIF reports to target/lint/ so CI can
# upload them as build artifacts; it exits non-zero on any
# error-severity finding, which fails the gate. It replaces the old
# clippy unwrap/expect grep gate: the sim-unwrap rule knows about
# #[cfg(test)] regions and justified suppressions, so the whole
# workspace is covered, not just three crates' --lib targets.
set -euo pipefail
cd "$(dirname "$0")/.."

NIGHTLY=0
for arg in "$@"; do
  case "$arg" in
    --nightly) NIGHTLY=1 ;;
    *) echo "usage: ci.sh [--nightly]" >&2; exit 2 ;;
  esac
done

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== nocstar-lint (determinism & simulator invariants) =="
# Cold pass: drop the incremental cache so every file is analyzed, then
# a warm pass over the unchanged tree must be served 100% from cache —
# this doubles as an end-to-end check of cache.rs's content hashing.
rm -rf target/lint
mkdir -p target/lint
cargo run --release -q -p nocstar-lint -- \
  --json-out target/lint/report.json \
  --sarif-out target/lint/report.sarif
echo "   lint artifacts: target/lint/report.json, target/lint/report.sarif"
echo "== nocstar-lint (warm cache pass) =="
WARM_SUMMARY="$(cargo run --release -q -p nocstar-lint -- --quiet 2>&1 | tail -n 1)"
echo "   $WARM_SUMMARY"
if [[ "$WARM_SUMMARY" != *"(0 re-analyzed"* ]]; then
  echo "error: warm lint pass re-analyzed files on an unchanged tree" >&2
  exit 1
fi

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (deny warnings: broken links fail the gate) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo build --release =="
cargo build --workspace --release

echo "== tier-1 tests =="
cargo test -q --workspace

echo "== trace subsystem: round-trip + golden fixture =="
cargo test -q --test trace_replay

if [[ "$NIGHTLY" == "1" ]]; then
  echo "== nightly: chaos property suite =="
  cargo test -q --test chaos

  echo "== nightly: 1024-core hierarchical-fabric chaos (cluster outage) =="
  cargo test -q --test chaos -- --ignored

  echo "== nightly: recovery-chaos smoke (1024-core cascading schedule) =="
  # The test itself asserts a non-empty recovered-translation count and
  # 8-domain byte-identity; release mode keeps the smoke under a minute.
  cargo test -q --release --test chaos \
    nightly_cascading_recovery_storm_at_1024_cores -- --ignored

  echo "== nightly: recovery-latency study =="
  cargo run --release -q -p nocstar-bench --bin recovery -- --quick

  echo "== nightly: scale-up claim (hier vs flat mesh at 512/1024 cores) =="
  cargo test -q --release --test paper_claims claim_hier_beats_flat_mesh_at_scale -- --ignored

  echo "== nightly: 1024-core scale-up smoke =="
  cargo run --release -q -p nocstar-bench --bin scaleup -- --quick

  echo "== nightly: fault-sweep smoke =="
  cargo run --release -q -p nocstar-bench --bin faultsweep -- --quick

  echo "== nightly: golden-report determinism sweep =="
  cargo test -q --test golden_reports
  cargo test -q --test determinism

  echo "== nightly: full domain-parallel sweep (domains 2/4/8, every fabric) =="
  cargo test -q --test determinism -- --ignored

  echo "== nightly: domain-parallel wall-clock gate =="
  NOCSTAR_PERF_ENFORCE=1 scripts/perf.sh --quick

  echo "== nightly: trace-replay equivalence (live vs recorded, real binaries) =="
  # Capture the redis preset with the simulator's defaults, then run the
  # replay binary twice — once live, once from the file — and demand
  # byte-identical report JSON. Proves the whole record -> NCT ->
  # FileTrace -> SimReport pipeline outside the test harness.
  TRACE_TMP="$(mktemp -d)"
  trap 'rm -rf "$TRACE_TMP"' EXIT
  cargo run --release -q -p nocstar-trace -- record \
    --preset redis --threads 4 --events 1200 --out "$TRACE_TMP/redis.nct"
  NOCSTAR_OUT="$TRACE_TMP/live" cargo run --release -q -p nocstar-bench --bin replay -- \
    --cores 4 --org nocstar --preset redis --warmup 200 --measure 500 >/dev/null
  NOCSTAR_OUT="$TRACE_TMP/replayed" cargo run --release -q -p nocstar-bench --bin replay -- \
    --cores 4 --org nocstar --warmup 200 --measure 500 \
    --trace-file "$TRACE_TMP/redis.nct" >/dev/null
  diff "$TRACE_TMP/live/replay.report.json" "$TRACE_TMP/replayed/replay.report.json"
  echo "   live and replayed reports are byte-identical"

  echo "== nightly: golden fixture replays to the golden report =="
  NOCSTAR_OUT="$TRACE_TMP/fixture" cargo run --release -q -p nocstar-bench --bin replay -- \
    --cores 4 --org nocstar --warmup 200 --measure 500 \
    --trace-file tests/golden/example.nct >/dev/null
  diff "$TRACE_TMP/fixture/replay.report.json" tests/golden/replay_example.json
  echo "   fixture replay matches tests/golden/replay_example.json"

  echo "Nightly CI gate passed."
else
  echo "PR CI gate passed."
fi
