#!/usr/bin/env bash
# Full local CI gate for the workspace. Run from anywhere; it cd's to the
# repo root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --workspace --release

echo "== cargo test =="
cargo test -q --workspace

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "CI gate passed."
