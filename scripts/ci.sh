#!/usr/bin/env bash
# Full local CI gate for the workspace. Run from anywhere; it cd's to the
# repo root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --workspace --release

echo "== cargo test =="
cargo test -q --workspace

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo clippy (no unwrap/expect in sim hot crates) =="
# Non-test code in the simulation core must degrade through SimError, not
# panic; --lib keeps #[cfg(test)] modules out of scope.
cargo clippy --no-deps -p nocstar-core -p nocstar-mem -p nocstar-noc --lib -- \
  -D warnings -D clippy::unwrap_used -D clippy::expect_used

echo "== chaos smoke (fault injection) =="
cargo test -q --test chaos
cargo run --release -q -p nocstar-bench --bin faultsweep -- --quick

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "CI gate passed."
