#!/usr/bin/env bash
# Wall-clock benchmark for the domain-parallel simulation driver
# (DESIGN.md §12). Sweeps 64- and 256-core systems across the five
# interconnect fabrics at 1 vs 8 simulation domains and writes
# bench_results/BENCH_parallel.json with wall-clock times and committed
# accesses per second; the hierarchical-fabric rows are additionally
# split out into bench_results/BENCH_hier.json (DESIGN.md §13). It also
# runs the closed-loop recovery-latency study and publishes it as
# bench_results/BENCH_recovery.json (DESIGN.md §14). The
# perf binary interleaves repetitions across the domain counts, so host
# noise (VM steal, frequency drift) hits both configurations equally
# and the reported minima are comparable.
#
# Usage:
#   perf.sh            full sweep (reps=5)
#   perf.sh --quick    mesh + hier, 256 cores only (reps=3)
#
# Environment:
#   NOCSTAR_PERF_ENFORCE=1   exit non-zero if the 8-domain run is slower
#                            than sequential on the 256-core packet mesh.
#                            Skipped (with a notice) on single-CPU hosts:
#                            the parallel driver's workers can only
#                            overlap with the commit loop when there is
#                            a second hardware thread to run them on, so
#                            on one CPU conservative parallelization is
#                            total-work-bound and cannot beat sequential.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) echo "usage: perf.sh [--quick]" >&2; exit 2 ;;
  esac
done

if [[ "$QUICK" == "1" ]]; then
  CORE_COUNTS=(256); ORGS=(distributed hier); REPS=3
else
  CORE_COUNTS=(64 256); ORGS=(ideal distributed smart nocstar hier); REPS=5
fi

HOST_CPUS="$(nproc)"
OUT=bench_results/BENCH_parallel.json
mkdir -p bench_results

echo "== building perf binary =="
cargo build --release -q -p nocstar-bench --bin perf

LINES="$(mktemp)"
trap 'rm -f "$LINES"' EXIT
for cores in "${CORE_COUNTS[@]}"; do
  for org in "${ORGS[@]}"; do
    echo "== $org, $cores cores, domains 1 vs 8 (reps=$REPS, interleaved) =="
    ./target/release/perf --cores "$cores" --org "$org" \
      --parallel-domains 1,8 --reps "$REPS" | tee -a "$LINES"
  done
done

HOST_CPUS="$HOST_CPUS" REPS="$REPS" OUT="$OUT" python3 - "$LINES" <<'EOF'
import json, os, sys

results = [json.loads(line) for line in open(sys.argv[1])]
doc = {
    "generated_by": "scripts/perf.sh",
    "host_cpus": int(os.environ["HOST_CPUS"]),
    "reps": int(os.environ["REPS"]),
    "results": results,
}
# Headline comparison: the ISSUE's target configuration, 256-core
# packet mesh at 8 domains vs sequential.
mesh = {r["domains"]: r for r in results
        if r["org"] == "distributed" and r["cores"] == 256}
if 1 in mesh and 8 in mesh:
    doc["mesh_256"] = {
        "sequential_ms": mesh[1]["wall_ms"],
        "eight_domain_ms": mesh[8]["wall_ms"],
        "speedup": round(mesh[1]["wall_ms"] / mesh[8]["wall_ms"], 3),
    }
out = os.environ["OUT"]
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out}")

# The hierarchical fabric gets its own artifact so the scale-up
# dashboards can track it without parsing the whole sweep.
hier = [r for r in results if r["org"] == "hier"]
if hier:
    hier_doc = {
        "generated_by": "scripts/perf.sh",
        "host_cpus": doc["host_cpus"],
        "reps": doc["reps"],
        "results": hier,
    }
    hier_out = os.path.join(os.path.dirname(out), "BENCH_hier.json")
    with open(hier_out, "w") as f:
        json.dump(hier_doc, f, indent=2)
        f.write("\n")
    print(f"wrote {hier_out}")
EOF

if [[ "${NOCSTAR_PERF_ENFORCE:-0}" == "1" ]]; then
  if [[ "$HOST_CPUS" -lt 2 ]]; then
    echo "perf gate: SKIPPED (host has $HOST_CPUS CPU; the domain workers"
    echo "have no second hardware thread to overlap with the commit loop,"
    echo "so the 8-domain-vs-sequential comparison is not meaningful here)"
  else
    python3 - "$OUT" <<'EOF'
import json, sys

doc = json.load(open(sys.argv[1]))
mesh = doc.get("mesh_256")
if mesh is None:
    sys.exit("perf gate: no 256-core mesh results (ran with --quick?)")
if mesh["speedup"] < 1.0:
    sys.exit(
        "perf gate: FAILED — 8-domain 256-core mesh run is slower than "
        f"sequential ({mesh['eight_domain_ms']}ms vs "
        f"{mesh['sequential_ms']}ms, speedup {mesh['speedup']})"
    )
print(f"perf gate: OK (8-domain speedup {mesh['speedup']} on the 256-core mesh)")
EOF
  fi
fi

echo "== closed-loop recovery-latency study =="
if [[ "$QUICK" == "1" ]]; then
  cargo run --release -q -p nocstar-bench --bin recovery -- --quick >/dev/null
else
  cargo run --release -q -p nocstar-bench --bin recovery >/dev/null
fi
OUT_RECOVERY=bench_results/BENCH_recovery.json
OUT="$OUT_RECOVERY" python3 - bench_results/recovery.csv <<'EOF'
import csv, json, os, sys

with open(sys.argv[1]) as f:
    rows = list(csv.DictReader(f))
doc = {
    "generated_by": "scripts/perf.sh",
    "results": rows,
}
# Headline: the worst (smallest) latency saving across the standard
# outage scenarios — the closed loop must never lose to the open loop.
savings = [float(r["latency saved"].rstrip("%")) for r in rows]
if savings:
    doc["min_latency_saved_pct"] = min(savings)
    doc["max_latency_saved_pct"] = max(savings)
out = os.environ["OUT"]
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out}")
if savings and min(savings) <= 0.0:
    sys.exit(
        "recovery gate: FAILED — the closed loop lost to the open loop "
        f"on at least one scenario (min saving {min(savings)}%)"
    )
print(f"recovery gate: OK (savings {min(savings)}% .. {max(savings)}%)")
EOF
