//! Offline drop-in subset of the `criterion` benchmarking API used by
//! this workspace.
//!
//! The build environment has no access to crates.io, so this shim keeps
//! the `cargo bench` harness compiling and useful: each benchmark runs a
//! short warmup, then a fixed measurement loop, and reports mean
//! wall-clock time per iteration. There is no statistical analysis, no
//! HTML report, and no outlier detection — just honest timings on
//! stderr-free stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized in [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// One setup call per timed iteration.
    PerIteration,
    /// Few large batches (treated like [`BatchSize::PerIteration`] here).
    SmallInput,
    /// Many large batches (treated like [`BatchSize::PerIteration`] here).
    LargeInput,
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the measurement loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with a fresh `setup()` input per iteration; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 50 }
    }
}

fn run_one(label: &str, sample_size: u64, f: &mut dyn FnMut(&mut Bencher)) {
    // Warmup: one iteration to fault in code and caches.
    let mut warm = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warm);

    let mut bench = Bencher {
        iters: sample_size,
        elapsed: Duration::ZERO,
    };
    f(&mut bench);
    let per_iter = bench.elapsed.as_nanos() / u128::from(bench.iters.max(1));
    println!(
        "bench {label:<56} {per_iter:>12} ns/iter ({} iters)",
        bench.iters
    );
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: u64,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the measurement iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.as_ref());
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; skip timing
            // loops there so the tier-1 suite stays fast.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_counts_every_iteration() {
        let mut count = 0u64;
        let mut b = Bencher {
            iters: 10,
            elapsed: Duration::ZERO,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 10);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut setups = 0u64;
        let mut runs = 0u64;
        let mut b = Bencher {
            iters: 7,
            elapsed: Duration::ZERO,
        };
        b.iter_batched(
            || {
                setups += 1;
                setups
            },
            |v| {
                runs += 1;
                v
            },
            BatchSize::PerIteration,
        );
        assert_eq!(setups, 7);
        assert_eq!(runs, 7);
    }

    #[test]
    fn groups_run_their_benchmarks() {
        let mut c = Criterion::default();
        let mut ran = false;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_function("one", |b| b.iter(|| ran = true));
            g.finish();
        }
        assert!(ran);
    }
}
