//! Offline drop-in subset of the `rand` crate API used by this workspace.
//!
//! The build environment has no access to crates.io, so this local shim
//! provides the exact surface the simulator uses: the [`Rng`] /
//! [`SeedableRng`] traits and a deterministic [`rngs::SmallRng`]
//! (xoshiro256++ seeded through splitmix64). Streams differ numerically
//! from upstream `rand`, but are of equivalent statistical quality and,
//! crucially, are fully deterministic for a given seed — the property the
//! simulator's reproducibility tests pin down.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types that can be produced uniformly at random by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u16 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` using the top 24 bits.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types that support uniform range sampling.
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform sample from `[low, high)`; `high > low`.
    fn sample_exclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`; `high >= low`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Unbiased uniform draw from `[0, span)` via Lemire-style rejection.
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_exclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u64;
                (low as i128 + uniform_u64(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return (low as i128 + rng.next_u64() as i128) as $t;
                }
                (low as i128 + uniform_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Argument to [`Rng::gen_range`]: half-open and inclusive ranges.
pub trait SampleRange<T> {
    /// Uniform sample from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// The subset of the `rand::Rng` interface the workspace uses.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A uniform sample from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::draw(self) < p
    }
}

/// Seedable generators (the workspace only uses `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(xs, (0..64).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&w));
        }
    }

    #[test]
    fn unit_floats_stay_in_range_and_fill_it() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.1;
            hi |= f > 0.9;
        }
        assert!(lo && hi, "samples should cover the unit interval");
    }

    #[test]
    fn full_domain_inclusive_range_works() {
        let mut rng = SmallRng::seed_from_u64(5);
        let _ = rng.gen_range(0u64..=u64::MAX);
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let heads = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = heads as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }
}
