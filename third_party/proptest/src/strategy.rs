//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Object-safe strategy view used by [`OneOf`] (and `prop_oneof!`).
pub trait DynStrategy<T> {
    /// Draws one value.
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<T, S: Strategy<Value = T>> DynStrategy<T> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> T {
        self.sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed sub-strategies (`prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<Box<dyn DynStrategy<T>>>,
}

impl<T> OneOf<T> {
    /// Builds a choice over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn DynStrategy<T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].sample_dyn(rng)
    }
}

/// Uniform choice among concrete values (`prop::sample::select`).
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    pub(crate) options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len())].clone()
    }
}

/// `Vec` strategy (`prop::collection::vec`).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(
            self.size.start < self.size.end,
            "vec strategy needs a nonempty size range"
        );
        let span = self.size.end - self.size.start;
        let len = self.size.start + rng.below(span.max(1));
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below_u128(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + rng.below_u128(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn just_returns_its_value() {
        let mut rng = TestRng::deterministic("just");
        assert_eq!(Just(7u32).sample(&mut rng), 7);
    }

    #[test]
    fn ranges_cover_their_domain() {
        let mut rng = TestRng::deterministic("ranges");
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[(3u64..8).sample(&mut rng) as usize - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "seen {seen:?}");
    }

    #[test]
    fn signed_inclusive_ranges_work() {
        let mut rng = TestRng::deterministic("signed");
        for _ in 0..100 {
            let v = (-3i64..=3).sample(&mut rng);
            assert!((-3..=3).contains(&v));
        }
    }
}
