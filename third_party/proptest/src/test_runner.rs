//! Test-runner configuration and the deterministic case RNG.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of (non-rejected) cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases: smaller than upstream's 256, chosen so the heavier
    /// simulation-backed properties stay fast in CI.
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; draw fresh ones.
    Reject,
    /// `prop_assert*!` failed with this message.
    Fail(String),
}

/// The deterministic generator behind every strategy draw.
///
/// Seeded from the test's name, so each test explores the same cases on
/// every run and on every machine.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// A generator seeded from `name` (FNV-1a).
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            inner: SmallRng::seed_from_u64(hash),
        }
    }

    /// The next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample below zero");
        self.inner.gen_range(0..n)
    }

    /// A uniform value in `[0, span)` for spans up to `2^64` inclusive.
    pub fn below_u128(&mut self, span: u128) -> u128 {
        if span > u128::from(u64::MAX) {
            u128::from(self.next_u64())
        } else {
            u128::from(self.inner.gen_range(0..span as u64))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("y");
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| c.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_is_bounded() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
