//! Offline drop-in subset of the `proptest` crate API used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so this shim
//! implements the pieces the test suites rely on: the [`proptest!`] macro
//! (with `#![proptest_config(...)]` support), `prop_assert*` /
//! `prop_assume!`, [`strategy::Strategy`] with range / [`strategy::Just`] /
//! `prop_oneof!` / [`collection::vec`] / [`sample::select`] / [`any`]
//! strategies, and [`test_runner::ProptestConfig`].
//!
//! Differences from upstream: failing cases are reported but **not
//! shrunk**, and value generation is deterministic per test name (every
//! run explores the same cases, which keeps CI and the golden-report
//! harness reproducible).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A strategy for `Vec`s of `element` values with a length drawn
    /// uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use crate::strategy::Select;

    /// A strategy drawing uniformly from `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "cannot select from an empty list");
        Select { options }
    }
}

/// A strategy producing arbitrary values of `T` (uniform over the domain).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types with a canonical "arbitrary value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> strategy::Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The common proptest vocabulary in one import.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` module alias (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Declares deterministic property tests.
///
/// Supports the upstream surface used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(12))]
///
///     /// Doc comments survive.
///     #[test]
///     fn prop_name(x in 0u64..100, flag in any::<bool>()) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                let mut __ran: u32 = 0;
                let mut __attempts: u32 = 0;
                while __ran < __config.cases {
                    __attempts += 1;
                    assert!(
                        __attempts <= __config.cases.saturating_mul(20).max(100),
                        "proptest: too many prop_assume! rejections in {}",
                        stringify!($name)
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    let __outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    match __outcome {
                        Ok(()) => __ran += 1,
                        Err($crate::test_runner::TestCaseError::Reject) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {}/{} of {} failed: {}",
                                __ran + 1,
                                __config.cases,
                                stringify!($name),
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{} at {}:{}", format!($($fmt)*), file!(), line!()),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{} (left: {:?}, right: {:?})",
            format!($($fmt)*),
            __l,
            __r
        );
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Skips the current case unless `cond` holds (the case is re-drawn).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// A strategy choosing uniformly among sub-strategies with equal weight.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(::std::boxed::Box::new($strategy) as ::std::boxed::Box<dyn $crate::strategy::DynStrategy<_>>,)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, y in 1usize..=3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((1..=3).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(xs in prop::collection::vec(0u32..9, 2..5)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            prop_assert!(xs.iter().all(|&v| v < 9));
        }

        #[test]
        fn oneof_and_select_draw_members(
            v in prop_oneof![Just(1u8), Just(2u8), Just(3u8)],
            w in prop::sample::select(vec!["a", "b"]),
        ) {
            prop_assert!([1u8, 2, 3].contains(&v));
            prop_assert!(w == "a" || w == "b");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        #[test]
        fn config_limits_cases(_x in 0u64..10) {
            // Only observable through runtime; the body runs 3 times.
            prop_assert!(true);
        }
    }

    // Generated without #[test]; driven by the named tests below.
    proptest! {
        fn assume_body(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        fn failing_body(x in 0u64..100) {
            prop_assert!(x > 1000, "x was {}", x);
        }
    }

    #[test]
    fn assume_rejects_without_failing() {
        assume_body();
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_context() {
        failing_body();
    }
}
